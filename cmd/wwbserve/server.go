package main

import (
	"net/http"

	"wwb/internal/chrome"
	"wwb/internal/core"
	"wwb/internal/experiments"
	"wwb/internal/fleet"
)

// server is a thin wrapper over the fleet serving core: the /v1 HTTP
// API, the hardening middleware, and the swappable dataset epoch all
// live in internal/fleet (shared with wwbrouter and the fleet tests);
// this command only wires in the study- or dataset-mode hooks.
type server struct {
	*fleet.Server
}

// middlewareConfig aliases the fleet middleware knobs so the flag
// wiring and the tests read naturally in this package.
type middlewareConfig = fleet.MiddlewareConfig

// withMiddleware wraps a handler in the fleet hardening stack.
func withMiddleware(next http.Handler, cfg middlewareConfig) http.Handler {
	return fleet.WithMiddleware(next, cfg)
}

// maxListN bounds /v1/list responses.
const maxListN = fleet.MaxListN

// newServer serves a fully assembled study: site categories and
// experiments are available.
func newServer(s *core.Study) *server {
	runner := experiments.Runner{Study: s}
	return &server{fleet.NewServer(s.Dataset, fleet.ServerConfig{
		Month:        s.Month,
		Categorize:   func(domain string) string { return string(s.Categorize(domain)) },
		Experiment:   runner.Run,
		LoadSnapshot: loadSnapshot,
	})}
}

// newDatasetServer serves a bare dataset (optionally one shard slice).
func newDatasetServer(ds *chrome.Dataset, shard fleet.Assignment) *server {
	return &server{fleet.NewServer(ds, fleet.ServerConfig{
		Shard:        shard,
		Month:        ds.Opts.DistMonth,
		LoadSnapshot: loadSnapshot,
	})}
}

// routes builds the handler; kept as a lower-case method so existing
// call sites and tests read unchanged.
func (s *server) routes(mcfg middlewareConfig) http.Handler {
	return s.Routes(mcfg)
}
