package main

import (
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"strconv"
	"strings"
	"sync"

	"wwb/internal/chrome"
	"wwb/internal/core"
	"wwb/internal/crux"
	"wwb/internal/endemicity"
	"wwb/internal/experiments"
	"wwb/internal/metrics"
	"wwb/internal/psl"
	"wwb/internal/world"
)

// server wraps either a full study or a bare dataset (loaded from a
// wwbgen file) with HTTP handlers. In dataset-only mode the endpoints
// that need the categorisation workflow or the world model (/v1/site
// category, /v1/experiment) are unavailable.
type server struct {
	study  *core.Study // nil in dataset-only mode
	ds     *chrome.Dataset
	month  world.Month
	runner experiments.Runner
	// cruxExport computes the public records (a field so tests can
	// inject a failing first attempt). cruxRecords are computed lazily
	// on first request; a failed export is NOT cached — the next
	// request retries — so a one-off panic (e.g. under chaos) cannot
	// poison the endpoint for the life of the process.
	cruxExport  func(*chrome.Dataset, world.Month) []crux.Record
	cruxMu      sync.Mutex
	cruxReady   bool
	cruxRecords []crux.Record
}

func newServer(s *core.Study) *server {
	return &server{
		study: s, ds: s.Dataset, month: s.Month,
		runner:     experiments.Runner{Study: s},
		cruxExport: crux.Export,
	}
}

// newDatasetServer serves a bare dataset.
func newDatasetServer(ds *chrome.Dataset) *server {
	return &server{ds: ds, month: ds.Opts.DistMonth, cruxExport: crux.Export}
}

// categorize labels a domain when a study is available.
func (s *server) categorize(domain string) string {
	if s.study == nil {
		return ""
	}
	return string(s.study.Categorize(domain))
}

// routes builds the route mux wrapped in the hardening middleware
// stack (request IDs, logging, panic recovery, load shedding,
// per-request timeout — see middleware.go).
func (s *server) routes(mcfg middlewareConfig) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealth)
	mux.Handle("GET /metrics", metrics.Handler(metrics.Default))
	if mcfg.Pprof {
		// Opt-in profiling endpoints; opsExempt keeps them outside the
		// limiter and the per-request timeout so a 30s CPU profile of a
		// saturated server actually completes.
		mux.HandleFunc("GET /debug/pprof/", pprof.Index)
		mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	}
	mux.HandleFunc("GET /v1/countries", s.handleCountries)
	mux.HandleFunc("GET /v1/list", s.handleList)
	mux.HandleFunc("GET /v1/dist", s.handleDist)
	mux.HandleFunc("GET /v1/site", s.handleSite)
	mux.HandleFunc("GET /v1/crux", s.handleCrux)
	mux.HandleFunc("GET /v1/experiments", s.handleExperiments)
	mux.HandleFunc("GET /v1/experiment/{id}", s.handleExperiment)
	// Catch-all: unknown paths get the same JSON error envelope as
	// every other failure, not net/http's plain-text 404 page.
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		httpError(w, http.StatusNotFound, "no such endpoint %s", r.URL.Path)
	})
	return withMiddleware(mux, mcfg)
}

// writeJSON sends a JSON response.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		log.Printf("encoding response: %v", err)
	}
}

// httpError sends a JSON error envelope.
func httpError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// maxListN bounds /v1/list responses; no rank list is deeper than the
// assembly's TopN, so anything larger only invites huge allocations.
const maxListN = 100000

func (s *server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *server) handleCountries(w http.ResponseWriter, _ *http.Request) {
	type country struct {
		Code      string `json:"code"`
		Name      string `json:"name"`
		Continent string `json:"continent"`
	}
	var out []country
	for _, c := range world.Countries() {
		out = append(out, country{Code: c.Code, Name: c.Name, Continent: c.Continent})
	}
	writeJSON(w, http.StatusOK, out)
}

// parsePlatform maps query values to platforms.
func parsePlatform(v string) (world.Platform, error) {
	switch strings.ToLower(v) {
	case "", "windows", "desktop":
		return world.Windows, nil
	case "android", "mobile":
		return world.Android, nil
	default:
		return 0, fmt.Errorf("unknown platform %q (want windows or android)", v)
	}
}

// parseMetric maps query values to metrics.
func parseMetric(v string) (world.Metric, error) {
	switch strings.ToLower(v) {
	case "", "loads", "pageloads", "page-loads":
		return world.PageLoads, nil
	case "time", "timeonpage", "time-on-page":
		return world.TimeOnPage, nil
	default:
		return 0, fmt.Errorf("unknown metric %q (want loads or time)", v)
	}
}

// platformParam renders a platform as its canonical query value, the
// inverse of parsePlatform.
func platformParam(p world.Platform) string {
	if p == world.Android {
		return "android"
	}
	return "windows"
}

// metricParam renders a metric as its canonical query value, the
// inverse of parseMetric.
func metricParam(m world.Metric) string {
	if m == world.TimeOnPage {
		return "time"
	}
	return "loads"
}

// parseMonth maps "2021-09".."2022-02" to months; empty means the
// study's analysis month.
func (s *server) parseMonth(v string) (world.Month, error) {
	if v == "" {
		return s.month, nil
	}
	for _, m := range world.StudyMonths {
		if m.String() == v {
			return m, nil
		}
	}
	return 0, fmt.Errorf("unknown month %q (want 2021-09 … 2022-02)", v)
}

func (s *server) handleList(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	country := strings.ToUpper(q.Get("country"))
	if _, ok := world.CountryByCode(country); !ok {
		httpError(w, http.StatusBadRequest, "unknown country %q", country)
		return
	}
	p, err := parsePlatform(q.Get("platform"))
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	m, err := parseMetric(q.Get("metric"))
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	month, err := s.parseMonth(q.Get("month"))
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	n := 100
	if raw := q.Get("n"); raw != "" {
		n, err = strconv.Atoi(raw)
		if err != nil || n < 1 {
			httpError(w, http.StatusBadRequest, "invalid n %q", raw)
			return
		}
	}
	if n > maxListN {
		n = maxListN
	}
	list := s.ds.List(country, p, m, month)
	if list == nil {
		httpError(w, http.StatusNotFound, "no list for %s/%s/%s/%s", country, p, m, month)
		return
	}
	// Clamp before allocating: n comes straight from the query, and a
	// ?n=1000000000 request must not size a multi-GB slice.
	if n > len(list) {
		n = len(list)
	}
	type entry struct {
		Rank     int     `json:"rank"`
		Domain   string  `json:"domain"`
		Value    float64 `json:"value"`
		Category string  `json:"category"`
	}
	out := make([]entry, 0, n)
	for i, e := range list.TopN(n) {
		out = append(out, entry{
			Rank:     i + 1,
			Domain:   e.Domain,
			Value:    e.Value,
			Category: s.categorize(e.Domain),
		})
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *server) handleDist(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	p, err := parsePlatform(q.Get("platform"))
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	m, err := parseMetric(q.Get("metric"))
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	curve := s.ds.Dist(p, m)
	if curve == nil {
		httpError(w, http.StatusNotFound, "no distribution for %s/%s", p, m)
		return
	}
	n := 1000
	if raw := q.Get("n"); raw != "" {
		n, err = strconv.Atoi(raw)
		if err != nil || n < 1 {
			httpError(w, http.StatusBadRequest, "invalid n %q", raw)
			return
		}
	}
	if n > curve.Len() {
		n = curve.Len()
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"sites":  curve.Len(),
		"shares": curve.Shares[:n],
		"cum10":  curve.CumShare(10),
		"cum100": curve.CumShare(100),
		"cum10k": curve.CumShare(10000),
		"for25":  curve.SitesForShare(0.25),
		"for50":  curve.SitesForShare(0.50),
	})
}

// handleSite serves a per-site popularity profile. Besides the
// required ?domain, it honours the same optional query params as the
// other endpoints: ?platform= (windows|android), ?metric=
// (loads|time), and ?month= (2021-09 … 2022-02, defaulting to the
// analysis month).
func (s *server) handleSite(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	domain := q.Get("domain")
	if domain == "" {
		httpError(w, http.StatusBadRequest, "missing domain parameter")
		return
	}
	p, err := parsePlatform(q.Get("platform"))
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	m, err := parseMetric(q.Get("metric"))
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	month, err := s.parseMonth(q.Get("month"))
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	key := psl.Default.SiteKey(domain)
	ranks := map[string]int{}
	codes := s.ds.Countries
	ix := s.ds.Index()
	if id, ok := ix.ID(key); ok {
		for _, c := range codes {
			if rank := ix.Rank(c, p, m, month, id); rank > 0 {
				ranks[c] = rank
			}
		}
	}
	curve := endemicity.BuildCurve(key, ranks, codes)
	writeJSON(w, http.StatusOK, map[string]any{
		"domain":     domain,
		"key":        key,
		"platform":   platformParam(p),
		"metric":     metricParam(m),
		"month":      month.String(),
		"category":   s.categorize(domain),
		"countries":  len(ranks),
		"ranks":      ranks,
		"endemicity": curve.Score(),
		"shape":      endemicity.ClassifyShape(curve).String(),
		"bestRank":   curve.BestRank(),
	})
}

func (s *server) handleCrux(w http.ResponseWriter, r *http.Request) {
	country := strings.ToUpper(r.URL.Query().Get("country"))
	if country != "" {
		if _, ok := world.CountryByCode(country); !ok {
			httpError(w, http.StatusBadRequest, "unknown country %q", country)
			return
		}
	}
	recs, err := s.cruxData()
	if err != nil {
		httpError(w, http.StatusInternalServerError, "crux export failed: %v", err)
		return
	}
	writeJSON(w, http.StatusOK, crux.Filter(recs, country))
}

// cruxData lazily computes the public records once and caches only a
// successful result. The old sync.Once version cached whatever the
// first attempt did — a panic inside the export (possible under
// chaos) left the endpoint permanently broken; now the failure is
// reported and the next request recomputes.
func (s *server) cruxData() (recs []crux.Record, err error) {
	s.cruxMu.Lock()
	defer s.cruxMu.Unlock()
	if s.cruxReady {
		return s.cruxRecords, nil
	}
	defer func() {
		if v := recover(); v != nil {
			recs, err = nil, fmt.Errorf("%v", v)
		}
	}()
	recs = s.cruxExport(s.ds, s.month)
	s.cruxRecords, s.cruxReady = recs, true
	return recs, nil
}

func (s *server) handleExperiments(w http.ResponseWriter, _ *http.Request) {
	type exp struct {
		ID    string `json:"id"`
		Title string `json:"title"`
	}
	var out []exp
	for _, id := range experiments.IDs() {
		e, _ := experiments.Lookup(id)
		out = append(out, exp{ID: e.ID, Title: e.Title})
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *server) handleExperiment(w http.ResponseWriter, r *http.Request) {
	if s.study == nil {
		httpError(w, http.StatusNotImplemented, "experiments need a full study; restart without -data")
		return
	}
	id := r.PathValue("id")
	out, err := s.runner.Run(id)
	if err != nil {
		httpError(w, http.StatusNotFound, "%v", err)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprint(w, out)
}
