package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"net/http"
	"strings"
	"sync/atomic"
	"time"
)

// middlewareConfig tunes the hardening stack wrapped around the route
// mux. The zero value disables the limiter and the timeout.
type middlewareConfig struct {
	// MaxInFlight bounds concurrently served requests; excess requests
	// are shed immediately with 503 + Retry-After. 0 means unlimited.
	MaxInFlight int
	// RequestTimeout bounds one request's handling via its context.
	// 0 means no per-request deadline.
	RequestTimeout time.Duration
	// Pprof mounts net/http/pprof under /debug/pprof/ (off by
	// default: profiling endpoints are opt-in).
	Pprof bool
}

// opsExempt reports whether a request bypasses the in-flight limiter
// and the per-request timeout. Health checks must answer 200 on a
// merely-busy server — a load balancer that gets a shed 503 from
// /healthz would evict a healthy instance — and the observability
// endpoints (/metrics scrapes, pprof profiles that legitimately run
// for 30s) are exactly what an operator needs while the server is
// saturated.
func opsExempt(r *http.Request) bool {
	p := r.URL.Path
	return p == "/healthz" || p == "/metrics" || strings.HasPrefix(p, "/debug/pprof")
}

// statusRecorder wraps a ResponseWriter to capture the status code and
// body size for the request log. A handler that never calls
// WriteHeader implicitly sends 200.
type statusRecorder struct {
	http.ResponseWriter
	status int
	bytes  int
}

func (r *statusRecorder) WriteHeader(status int) {
	if r.status == 0 {
		r.status = status
	}
	r.ResponseWriter.WriteHeader(status)
}

func (r *statusRecorder) Write(p []byte) (int, error) {
	if r.status == 0 {
		r.status = http.StatusOK
	}
	n, err := r.ResponseWriter.Write(p)
	r.bytes += n
	return n, err
}

// Flush keeps streaming handlers working through the wrapper.
func (r *statusRecorder) Flush() {
	if f, ok := r.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// requestIDKey carries the request ID in the request context.
type requestIDKey struct{}

var requestCounter atomic.Uint64

// requestID returns the ID assigned to the request, or "-".
func requestID(ctx context.Context) string {
	if id, ok := ctx.Value(requestIDKey{}).(string); ok {
		return id
	}
	return "-"
}

// withMiddleware wraps the route mux in the hardening stack, outermost
// first: request-ID assignment, request logging (status, bytes,
// duration), metrics instrumentation, panic recovery, the in-flight
// limiter, and the per-request timeout. Ordering matters — the logger
// and the instrumentation sit outside recovery and the limiter so
// 500s and 503s appear in the log and the counters with their final
// status.
func withMiddleware(next http.Handler, cfg middlewareConfig) http.Handler {
	h := next
	h = timeoutRequests(h, cfg.RequestTimeout)
	h = limitInFlight(h, cfg.MaxInFlight)
	h = recoverPanics(h)
	h = instrumentRequests(h)
	h = logRequests(h)
	h = assignRequestID(h)
	return h
}

// assignRequestID tags every request with a process-unique ID, echoed
// in the X-Request-ID response header and threaded through the context
// for the logger and error paths.
func assignRequestID(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := fmt.Sprintf("req-%06d", requestCounter.Add(1))
		w.Header().Set("X-Request-ID", id)
		next.ServeHTTP(w, r.WithContext(context.WithValue(r.Context(), requestIDKey{}, id)))
	})
}

// logRequests writes one line per request with method, path, status,
// response bytes, duration, and request ID.
func logRequests(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		rec := &statusRecorder{ResponseWriter: w}
		start := time.Now()
		next.ServeHTTP(rec, r)
		if rec.status == 0 {
			rec.status = http.StatusOK
		}
		log.Printf("%s %s %d %dB %s %s",
			r.Method, r.URL, rec.status, rec.bytes,
			time.Since(start).Round(time.Microsecond), requestID(r.Context()))
	})
}

// recoverPanics converts a handler panic into a JSON 500 instead of
// killing the connection (and, for the default http.Server, logging a
// raw stack trace as the only evidence). The response is best-effort:
// if the handler already wrote a partial body, the envelope is
// appended, but the connection survives either way.
//
// http.ErrAbortHandler is re-raised untouched: it is the stdlib's
// sentinel for "abort this response and drop the connection" (e.g. a
// reverse proxy whose client went away), and converting it to a JSON
// 500 would turn a deliberate abort into a bogus success-looking
// response on a connection the handler wanted dead.
func recoverPanics(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if v := recover(); v != nil {
				if err, ok := v.(error); ok && errors.Is(err, http.ErrAbortHandler) {
					panic(v)
				}
				mHTTPPanics.Inc()
				log.Printf("panic serving %s %s (%s): %v", r.Method, r.URL, requestID(r.Context()), v)
				httpError(w, http.StatusInternalServerError, "internal error (request %s)", requestID(r.Context()))
			}
		}()
		next.ServeHTTP(w, r)
	})
}

// limitInFlight sheds load once max requests are already being served:
// excess requests get an immediate 503 with Retry-After instead of
// queueing behind a saturated server. Requests opsExempt recognises
// (health checks, metrics scrapes, pprof) bypass the limiter: they
// must keep answering precisely when the server is saturated.
// max <= 0 disables the limiter.
func limitInFlight(next http.Handler, max int) http.Handler {
	if max <= 0 {
		return next
	}
	sem := make(chan struct{}, max)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if opsExempt(r) {
			next.ServeHTTP(w, r)
			return
		}
		select {
		case sem <- struct{}{}:
			defer func() { <-sem }()
			next.ServeHTTP(w, r)
		default:
			mHTTPSheds.Inc()
			w.Header().Set("Retry-After", "1")
			httpError(w, http.StatusServiceUnavailable, "server at capacity (%d in flight)", max)
		}
	})
}

// timeoutRequests derives a deadline onto every request's context so
// context-aware work started by a handler is abandoned when the
// request has taken too long. Ops endpoints are exempt (a pprof CPU
// profile legitimately takes 30s). d <= 0 disables the deadline.
func timeoutRequests(next http.Handler, d time.Duration) http.Handler {
	if d <= 0 {
		return next
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if opsExempt(r) {
			next.ServeHTTP(w, r)
			return
		}
		ctx, cancel := context.WithTimeout(r.Context(), d)
		defer cancel()
		next.ServeHTTP(w, r.WithContext(ctx))
	})
}
