package main

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"wwb/internal/chrome"
	"wwb/internal/core"
	"wwb/internal/crux"
	"wwb/internal/world"
)

// testServer spins the handlers up once over a small February-only
// study; the study is shared with the dataset-only mode test.
var (
	testStudyForDataset = core.New(core.SmallConfig().FebOnly())
	testSrv             = httptest.NewServer(newServer(testStudyForDataset).routes(middlewareConfig{}))
)

func get(t *testing.T, path string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(testSrv.URL + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, body
}

func TestHealthz(t *testing.T) {
	resp, body := get(t, "/healthz")
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "ok") {
		t.Errorf("healthz: %d %s", resp.StatusCode, body)
	}
}

func TestCountriesEndpoint(t *testing.T) {
	resp, body := get(t, "/v1/countries")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var out []map[string]string
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if len(out) != 45 {
		t.Errorf("countries = %d", len(out))
	}
}

func TestListEndpoint(t *testing.T) {
	resp, body := get(t, "/v1/list?country=us&platform=windows&metric=loads&n=5")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var out []struct {
		Rank     int    `json:"rank"`
		Domain   string `json:"domain"`
		Category string `json:"category"`
	}
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if len(out) != 5 || out[0].Domain != "google.us" || out[0].Rank != 1 {
		t.Errorf("unexpected list: %+v", out)
	}
	if out[0].Category != "Search Engines" {
		t.Errorf("google.us category = %q", out[0].Category)
	}
}

func TestListEndpointHugeNClamped(t *testing.T) {
	// ?n=1000000000 used to size the response slice straight from the
	// query value — a multi-GB allocation. It must now serve the whole
	// list and nothing more.
	resp, body := get(t, "/v1/list?country=US&platform=windows&metric=loads&n=1000000000")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var out []struct {
		Rank int `json:"rank"`
	}
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	want := len(testStudyForDataset.Dataset.List("US", world.Windows, world.PageLoads, testStudyForDataset.Month))
	if want > maxListN {
		want = maxListN
	}
	if len(out) != want {
		t.Errorf("entries = %d, want full list length %d", len(out), want)
	}
}

func TestListEndpointErrors(t *testing.T) {
	cases := []string{
		"/v1/list?country=XX",
		"/v1/list?country=US&platform=ios",
		"/v1/list?country=US&metric=clicks",
		"/v1/list?country=US&n=-1",
		"/v1/list?country=US&month=2020-01",
	}
	for _, path := range cases {
		resp, _ := get(t, path)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", path, resp.StatusCode)
		}
	}
}

func TestDistEndpoint(t *testing.T) {
	resp, body := get(t, "/v1/dist?platform=windows&metric=loads&n=10")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var out struct {
		Sites  int       `json:"sites"`
		Shares []float64 `json:"shares"`
		For25  int       `json:"for25"`
	}
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if out.Sites < 1000 || len(out.Shares) != 10 || out.For25 < 1 {
		t.Errorf("dist response: %+v", out)
	}
}

func TestSiteEndpoint(t *testing.T) {
	resp, body := get(t, "/v1/site?domain=google.com")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var out struct {
		Key        string  `json:"key"`
		Countries  int     `json:"countries"`
		Endemicity float64 `json:"endemicity"`
		Shape      string  `json:"shape"`
		BestRank   int     `json:"bestRank"`
	}
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if out.Key != "google" || out.Countries != 45 || out.BestRank != 1 {
		t.Errorf("site response: %+v", out)
	}
	if out.Shape != "global-flat" {
		t.Errorf("google shape = %q", out.Shape)
	}
	resp, _ = get(t, "/v1/site")
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("missing domain: status %d", resp.StatusCode)
	}
}

func TestSiteEndpointHonoursParams(t *testing.T) {
	// /v1/site used to hard-code Windows/PageLoads and silently ignore
	// the platform/metric/month params every other endpoint honours.
	resp, body := get(t, "/v1/site?domain=google.com&platform=android&metric=time")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var out struct {
		Platform string `json:"platform"`
		Metric   string `json:"metric"`
		Month    string `json:"month"`
		Ranks    map[string]int
	}
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if out.Platform != "android" || out.Metric != "time" {
		t.Errorf("echoed platform/metric = %q/%q, want android/time", out.Platform, out.Metric)
	}
	if out.Month != testStudyForDataset.Month.String() {
		t.Errorf("default month = %q, want %q", out.Month, testStudyForDataset.Month)
	}
	// The ranks must come from the requested cell, not the hard-coded
	// one: spot-check one country against the dataset directly.
	list := testStudyForDataset.Dataset.List("US", world.Android, world.TimeOnPage, testStudyForDataset.Month)
	if want := list.Rank("google.us"); want > 0 && out.Ranks["US"] != want {
		t.Errorf("US android/time rank = %d, want %d", out.Ranks["US"], want)
	}

	for _, path := range []string{
		"/v1/site?domain=google.com&platform=ios",
		"/v1/site?domain=google.com&metric=clicks",
		"/v1/site?domain=google.com&month=2020-01",
	} {
		resp, _ := get(t, path)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", path, resp.StatusCode)
		}
	}
}

func TestCruxRecoversFromFailedFirstExport(t *testing.T) {
	// The old sync.Once lazy init cached a panicking first attempt
	// forever; a single chaos-induced failure poisoned the endpoint
	// for the life of the process. Now the failure is reported and the
	// next request retries.
	srv := newServer(testStudyForDataset)
	calls := 0
	srv.SetCruxExport(func(ds *chrome.Dataset, m world.Month) []crux.Record {
		calls++
		if calls == 1 {
			panic("chaos: injected export failure")
		}
		return crux.Export(ds, m)
	})
	ts := httptest.NewServer(srv.routes(middlewareConfig{}))
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/v1/crux?country=US")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("first request: status %d, want 500", resp.StatusCode)
	}

	resp, err = http.Get(ts.URL + "/v1/crux?country=US")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("second request: status %d, want 200 (body %s)", resp.StatusCode, body)
	}
	var recs []crux.Record
	if err := json.Unmarshal(body, &recs); err != nil {
		t.Fatal(err)
	}
	if len(recs) == 0 {
		t.Error("second request returned no records")
	}
	if calls != 2 {
		t.Errorf("export calls = %d, want 2 (one failure, one success)", calls)
	}

	// A third request must hit the cache, not recompute.
	resp, _ = http.Get(ts.URL + "/v1/crux?country=US")
	resp.Body.Close()
	if calls != 2 {
		t.Errorf("export calls after cache hit = %d, want 2", calls)
	}
}

func TestCruxEndpoint(t *testing.T) {
	resp, body := get(t, "/v1/crux?country=KR")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var out []struct {
		Domain string `json:"domain"`
		Bucket int    `json:"bucket"`
	}
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if len(out) == 0 {
		t.Fatal("no crux records")
	}
	hasNaver := false
	for _, r := range out {
		if r.Domain == "naver.com" && r.Bucket == 1000 {
			hasNaver = true
		}
	}
	if !hasNaver {
		t.Error("naver.com should be a KR top-1K bucket record")
	}
}

func TestExperimentEndpoints(t *testing.T) {
	resp, body := get(t, "/v1/experiments")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var out []struct{ ID string }
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if len(out) < 20 {
		t.Errorf("experiments = %d", len(out))
	}

	resp, body = get(t, "/v1/experiment/fig1")
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "Figure 1") {
		t.Errorf("fig1: %d %s", resp.StatusCode, body[:min(len(body), 100)])
	}
	resp, _ = get(t, "/v1/experiment/fig99")
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown experiment: status %d", resp.StatusCode)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
