package main

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"wwb/internal/core"
	"wwb/internal/world"
)

// testServer spins the handlers up once over a small February-only
// study; the study is shared with the dataset-only mode test.
var (
	testStudyForDataset = core.New(core.SmallConfig().FebOnly())
	testSrv             = httptest.NewServer(newServer(testStudyForDataset).routes(middlewareConfig{}))
)

func get(t *testing.T, path string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(testSrv.URL + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, body
}

func TestHealthz(t *testing.T) {
	resp, body := get(t, "/healthz")
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "ok") {
		t.Errorf("healthz: %d %s", resp.StatusCode, body)
	}
}

func TestCountriesEndpoint(t *testing.T) {
	resp, body := get(t, "/v1/countries")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var out []map[string]string
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if len(out) != 45 {
		t.Errorf("countries = %d", len(out))
	}
}

func TestListEndpoint(t *testing.T) {
	resp, body := get(t, "/v1/list?country=us&platform=windows&metric=loads&n=5")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var out []struct {
		Rank     int    `json:"rank"`
		Domain   string `json:"domain"`
		Category string `json:"category"`
	}
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if len(out) != 5 || out[0].Domain != "google.us" || out[0].Rank != 1 {
		t.Errorf("unexpected list: %+v", out)
	}
	if out[0].Category != "Search Engines" {
		t.Errorf("google.us category = %q", out[0].Category)
	}
}

func TestListEndpointHugeNClamped(t *testing.T) {
	// ?n=1000000000 used to size the response slice straight from the
	// query value — a multi-GB allocation. It must now serve the whole
	// list and nothing more.
	resp, body := get(t, "/v1/list?country=US&platform=windows&metric=loads&n=1000000000")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var out []struct {
		Rank int `json:"rank"`
	}
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	want := len(testStudyForDataset.Dataset.List("US", world.Windows, world.PageLoads, testStudyForDataset.Month))
	if want > maxListN {
		want = maxListN
	}
	if len(out) != want {
		t.Errorf("entries = %d, want full list length %d", len(out), want)
	}
}

func TestListEndpointErrors(t *testing.T) {
	cases := []string{
		"/v1/list?country=XX",
		"/v1/list?country=US&platform=ios",
		"/v1/list?country=US&metric=clicks",
		"/v1/list?country=US&n=-1",
		"/v1/list?country=US&month=2020-01",
	}
	for _, path := range cases {
		resp, _ := get(t, path)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", path, resp.StatusCode)
		}
	}
}

func TestDistEndpoint(t *testing.T) {
	resp, body := get(t, "/v1/dist?platform=windows&metric=loads&n=10")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var out struct {
		Sites  int       `json:"sites"`
		Shares []float64 `json:"shares"`
		For25  int       `json:"for25"`
	}
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if out.Sites < 1000 || len(out.Shares) != 10 || out.For25 < 1 {
		t.Errorf("dist response: %+v", out)
	}
}

func TestSiteEndpoint(t *testing.T) {
	resp, body := get(t, "/v1/site?domain=google.com")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var out struct {
		Key        string  `json:"key"`
		Countries  int     `json:"countries"`
		Endemicity float64 `json:"endemicity"`
		Shape      string  `json:"shape"`
		BestRank   int     `json:"bestRank"`
	}
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if out.Key != "google" || out.Countries != 45 || out.BestRank != 1 {
		t.Errorf("site response: %+v", out)
	}
	if out.Shape != "global-flat" {
		t.Errorf("google shape = %q", out.Shape)
	}
	resp, _ = get(t, "/v1/site")
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("missing domain: status %d", resp.StatusCode)
	}
}

func TestCruxEndpoint(t *testing.T) {
	resp, body := get(t, "/v1/crux?country=KR")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var out []struct {
		Domain string `json:"domain"`
		Bucket int    `json:"bucket"`
	}
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if len(out) == 0 {
		t.Fatal("no crux records")
	}
	hasNaver := false
	for _, r := range out {
		if r.Domain == "naver.com" && r.Bucket == 1000 {
			hasNaver = true
		}
	}
	if !hasNaver {
		t.Error("naver.com should be a KR top-1K bucket record")
	}
}

func TestExperimentEndpoints(t *testing.T) {
	resp, body := get(t, "/v1/experiments")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var out []struct{ ID string }
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if len(out) < 20 {
		t.Errorf("experiments = %d", len(out))
	}

	resp, body = get(t, "/v1/experiment/fig1")
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "Figure 1") {
		t.Errorf("fig1: %d %s", resp.StatusCode, body[:min(len(body), 100)])
	}
	resp, _ = get(t, "/v1/experiment/fig99")
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown experiment: status %d", resp.StatusCode)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
