package main

import (
	"context"
	"io"
	"log"
	"net"
	"net/http"
	"testing"
	"time"

	"wwb/internal/fleet"
)

// TestGracefulShutdownDrainsInFlight covers the SIGTERM path through
// the serve helper: with a slow request in flight, cancelling the
// serve context must (a) let that request finish with a 200 and
// (b) refuse new connections, all within the drain window.
func TestGracefulShutdownDrainsInFlight(t *testing.T) {
	entered := make(chan struct{})
	release := make(chan struct{})
	h := withMiddleware(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/slow" {
			close(entered)
			<-release
		}
		w.WriteHeader(http.StatusOK)
	}), middlewareConfig{})
	log.SetOutput(io.Discard)
	defer log.SetOutput(prevWriter())

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ctx, cancel := context.WithCancel(context.Background())
	srv := &http.Server{Handler: h}
	serveErr := make(chan error, 1)
	go func() { serveErr <- fleet.Serve(ctx, srv, ln, 5*time.Second) }()

	// Put a slow request in flight.
	slowStatus := make(chan int, 1)
	go func() {
		resp, err := http.Get("http://" + addr + "/slow")
		if err != nil {
			slowStatus <- -1
			return
		}
		resp.Body.Close()
		slowStatus <- resp.StatusCode
	}()
	<-entered

	// Trigger shutdown (production: SIGTERM via signal.NotifyContext).
	cancel()

	// New connections must start failing: Shutdown closes the listener
	// first, so poll briefly for the refusal to take effect.
	refused := false
	for i := 0; i < 100; i++ {
		c := &http.Client{Timeout: 200 * time.Millisecond}
		resp, err := c.Get("http://" + addr + "/healthz")
		if err != nil {
			refused = true
			break
		}
		resp.Body.Close()
		time.Sleep(10 * time.Millisecond)
	}
	if !refused {
		t.Error("new connections still accepted after shutdown began")
	}

	// The in-flight request must still complete successfully.
	close(release)
	if status := <-slowStatus; status != http.StatusOK {
		t.Errorf("in-flight request: status %d, want 200", status)
	}
	select {
	case err := <-serveErr:
		if err != nil {
			t.Errorf("serve returned %v after graceful drain", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("serve did not return after drain")
	}
}

// TestServeReturnsListenerError pins the non-signal exit path: if the
// listener dies underneath the server, serve surfaces the error
// instead of hanging on the context.
func TestServeReturnsListenerError(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := &http.Server{Handler: http.NewServeMux()}
	ctx := context.Background()
	errCh := make(chan error, 1)
	go func() { errCh <- fleet.Serve(ctx, srv, ln, time.Second) }()
	ln.Close()
	select {
	case err := <-errCh:
		if err == nil {
			t.Error("serve returned nil after the listener was closed externally")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("serve did not notice the dead listener")
	}
}
