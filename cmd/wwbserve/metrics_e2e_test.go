package main

import (
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"

	"wwb/internal/chaos"
	"wwb/internal/core"
	"wwb/internal/metrics"
)

// shedCounter looks up the process-wide shed counter the fleet
// middleware registers; re-registering the same name and type returns
// the identical counter.
func shedCounter() interface{ Value() uint64 } {
	return metrics.Default.Counter("http_sheds_total",
		"Requests shed with 503 by the in-flight limiter.")
}

// scrape fetches and returns the /metrics exposition text.
func scrape(t *testing.T, base string) string {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Errorf("content type %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}

// metricValue extracts the value of the first sample line matching
// the series prefix (name or name{labels...}), or -1 when absent.
func metricValue(text, prefix string) float64 {
	for _, line := range strings.Split(text, "\n") {
		if strings.HasPrefix(line, "#") || !strings.HasPrefix(line, prefix) {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			continue
		}
		v, err := strconv.ParseFloat(fields[1], 64)
		if err != nil {
			continue
		}
		return v
	}
	return -1
}

// TestMetricsEndToEndChaos drives a chaos-seeded study through the
// full serving stack and asserts /metrics reflects what happened:
// requests served per route, limiter sheds, and the categorisation
// client's retries, degradations, and breaker transitions.
func TestMetricsEndToEndChaos(t *testing.T) {
	cfg := core.SmallConfig().FebOnly()
	cfg.Workers = 2
	// Full-rate chaos: attempts succeed only via Slow faults, so most
	// lookups exhaust their budget, degrade, and trip the breaker.
	cfg.Chaos = chaos.Flaky(7, 1.0)
	study := core.New(cfg)

	log.SetOutput(io.Discard)
	defer log.SetOutput(prevWriter())
	srv := httptest.NewServer(newServer(study).routes(middlewareConfig{MaxInFlight: 8}))
	defer srv.Close()

	before := scrape(t, srv.URL)

	// Serve a categorising request: every entry resolves through the
	// resilient client under injected faults.
	resp, err := http.Get(srv.URL + "/v1/list?country=US&platform=windows&metric=loads&n=100")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("list status %d", resp.StatusCode)
	}
	if st := study.Client.Stats(); st.Degraded == 0 {
		t.Fatalf("chaos run produced no degradations (stats %+v); the e2e assertions below would be vacuous", st)
	}
	if snap := study.Client.Breaker().Snapshot(); snap.Opens == 0 {
		t.Fatalf("breaker never opened under full-rate chaos: %+v", snap)
	}

	after := scrape(t, srv.URL)

	// Required families, all non-comment sample lines present.
	for _, family := range []string{
		"http_requests_total", "http_request_duration_seconds", "http_in_flight",
		"http_sheds_total", "catapi_attempts_total", "catapi_retries_total",
		"catapi_degraded_total", "catapi_breaker_transitions_total",
		"parallel_tasks_started_total", "wwb_stage_seconds_total",
	} {
		if !strings.Contains(after, "# TYPE "+family+" ") {
			t.Errorf("/metrics missing family %s", family)
		}
	}

	// The list request must show up in the per-route counter and the
	// latency histogram.
	listCount := metricValue(after, `http_requests_total{route="/v1/list",class="2xx"}`)
	if listCount < 1 {
		t.Errorf("http_requests_total for /v1/list 2xx = %v, want >= 1", listCount)
	}
	if v := metricValue(after, `http_request_duration_seconds_count{route="/v1/list"}`); v < 1 {
		t.Errorf("latency histogram count for /v1/list = %v, want >= 1", v)
	}

	// The chaos traffic must be visible: degradations, retries, and at
	// least one breaker-open transition beyond the pre-request scrape.
	for _, series := range []string{
		"catapi_degraded_total",
		"catapi_retries_total",
		`catapi_breaker_transitions_total{to="open"}`,
	} {
		b, a := metricValue(before, series), metricValue(after, series)
		if a <= 0 || a <= b {
			t.Errorf("%s = %v (was %v), want an increase", series, a, b)
		}
	}

	// Scrapes themselves are counted once the second scrape sees the
	// first.
	if v := metricValue(after, `http_requests_total{route="/metrics",class="2xx"}`); v < 1 {
		t.Errorf("scrape not counted: %v", v)
	}
}

// TestMetricsReflectsSheds saturates a limiter and checks the shed
// shows up on a scrape (the counter is process-wide, so assert on the
// delta).
func TestMetricsReflectsSheds(t *testing.T) {
	before := shedCounter().Value()

	entered := make(chan struct{})
	release := make(chan struct{})
	h := withMiddleware(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		close(entered)
		<-release
		w.WriteHeader(http.StatusOK)
	}), middlewareConfig{MaxInFlight: 1})
	log.SetOutput(io.Discard)
	defer log.SetOutput(prevWriter())
	srv := httptest.NewServer(h)
	defer srv.Close()

	done := make(chan struct{})
	go func() {
		defer close(done)
		resp, err := http.Get(srv.URL + "/")
		if err == nil {
			resp.Body.Close()
		}
	}()
	<-entered
	resp, err := http.Get(srv.URL + "/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	close(release)
	<-done
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503", resp.StatusCode)
	}
	if got := shedCounter().Value(); got != before+1 {
		t.Errorf("http_sheds_total = %d, want %d", got, before+1)
	}

	// And the shed request is classified 5xx under the synthetic
	// "other" route in the exposition.
	ms := httptest.NewServer(newServer(testStudyForDataset).routes(middlewareConfig{}))
	defer ms.Close()
	text := scrape(t, ms.URL)
	if v := metricValue(text, `http_requests_total{route="other",class="5xx"}`); v < 1 {
		t.Errorf(`http_requests_total{route="other",class="5xx"} = %v, want >= 1`, v)
	}
}
