package main

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// errorEnvelope decodes the JSON error body every failure path must
// produce.
func errorEnvelope(t *testing.T, body []byte) string {
	t.Helper()
	var out struct {
		Error string `json:"error"`
	}
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatalf("error body is not a JSON envelope: %v (%q)", err, body)
	}
	if out.Error == "" {
		t.Fatalf("empty error envelope: %q", body)
	}
	return out.Error
}

func TestRequestIDsAssignedAndUnique(t *testing.T) {
	resp1, _ := get(t, "/healthz")
	resp2, _ := get(t, "/healthz")
	id1, id2 := resp1.Header.Get("X-Request-ID"), resp2.Header.Get("X-Request-ID")
	if id1 == "" || id2 == "" {
		t.Fatalf("missing X-Request-ID: %q, %q", id1, id2)
	}
	if id1 == id2 {
		t.Errorf("request IDs collide: %q", id1)
	}
}

func TestLogLineHasStatusDurationAndID(t *testing.T) {
	var buf bytes.Buffer
	log.SetOutput(&buf)
	defer log.SetOutput(prevWriter())

	resp, _ := get(t, "/v1/countries")
	line := buf.String()
	if !strings.Contains(line, "200") {
		t.Errorf("log line missing status: %q", line)
	}
	if !strings.Contains(line, resp.Header.Get("X-Request-ID")) {
		t.Errorf("log line missing request ID %q: %q", resp.Header.Get("X-Request-ID"), line)
	}
	if !strings.Contains(line, "µs") && !strings.Contains(line, "ms") && !strings.Contains(line, "s ") {
		t.Errorf("log line missing duration: %q", line)
	}
}

func TestUnknownPathIsJSON404(t *testing.T) {
	resp, body := get(t, "/nope/nothing")
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status %d, want 404", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "application/json") {
		t.Errorf("content type %q", ct)
	}
	if msg := errorEnvelope(t, body); !strings.Contains(msg, "/nope/nothing") {
		t.Errorf("envelope %q does not name the path", msg)
	}
}

func TestErrorEnvelopesOnBadParams(t *testing.T) {
	for _, path := range []string{
		"/v1/list?country=XX",
		"/v1/list?country=US&platform=ios",
		"/v1/list?country=US&metric=clicks",
		"/v1/list?country=US&n=zero",
		"/v1/crux?country=ZZ",
		"/v1/site",
	} {
		resp, body := get(t, path)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", path, resp.StatusCode)
			continue
		}
		errorEnvelope(t, body)
	}
	resp, body := get(t, "/v1/experiment/fig99")
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown experiment: status %d, want 404", resp.StatusCode)
	}
	errorEnvelope(t, body)
}

func TestRecoverPanicsToJSON500(t *testing.T) {
	h := withMiddleware(http.HandlerFunc(func(http.ResponseWriter, *http.Request) {
		panic("boom")
	}), middlewareConfig{})
	log.SetOutput(io.Discard)
	defer log.SetOutput(prevWriter())
	srv := httptest.NewServer(h)
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/")
	if err != nil {
		t.Fatalf("connection died on panic: %v", err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("status %d, want 500", resp.StatusCode)
	}
	if msg := errorEnvelope(t, body); !strings.Contains(msg, resp.Header.Get("X-Request-ID")) {
		t.Errorf("500 envelope %q does not carry the request ID", msg)
	}
}

func TestInFlightLimiterSheds(t *testing.T) {
	entered := make(chan struct{})
	release := make(chan struct{})
	h := withMiddleware(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		close(entered)
		<-release
		w.WriteHeader(http.StatusOK)
	}), middlewareConfig{MaxInFlight: 1})
	log.SetOutput(io.Discard)
	defer log.SetOutput(prevWriter())
	srv := httptest.NewServer(h)
	defer srv.Close()

	var wg sync.WaitGroup
	wg.Add(1)
	var firstStatus int
	go func() {
		defer wg.Done()
		resp, err := http.Get(srv.URL + "/")
		if err == nil {
			firstStatus = resp.StatusCode
			resp.Body.Close()
		}
	}()
	<-entered // the slot is now taken

	resp, err := http.Get(srv.URL + "/")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("second request: status %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("503 without Retry-After")
	}
	errorEnvelope(t, body)

	close(release)
	wg.Wait()
	if firstStatus != http.StatusOK {
		t.Errorf("first request: status %d, want 200", firstStatus)
	}
}

func TestRequestTimeoutOnContext(t *testing.T) {
	sawDeadline := false
	h := withMiddleware(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case <-r.Context().Done():
			sawDeadline = context.Cause(r.Context()) == context.DeadlineExceeded
			httpError(w, http.StatusServiceUnavailable, "timed out")
		case <-time.After(5 * time.Second):
			w.WriteHeader(http.StatusOK)
		}
	}), middlewareConfig{RequestTimeout: 20 * time.Millisecond})
	log.SetOutput(io.Discard)
	defer log.SetOutput(prevWriter())
	srv := httptest.NewServer(h)
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if !sawDeadline {
		t.Error("handler context never hit its deadline")
	}
}

// prevWriter returns the process's default log destination for
// restoring after tests that silence or capture it.
func prevWriter() io.Writer { return logDefaultWriter }

var logDefaultWriter = log.Writer()
