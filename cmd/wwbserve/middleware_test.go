package main

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"wwb/internal/metrics"
)

// errorEnvelope decodes the JSON error body every failure path must
// produce.
func errorEnvelope(t *testing.T, body []byte) string {
	t.Helper()
	var out struct {
		Error string `json:"error"`
	}
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatalf("error body is not a JSON envelope: %v (%q)", err, body)
	}
	if out.Error == "" {
		t.Fatalf("empty error envelope: %q", body)
	}
	return out.Error
}

func TestRequestIDsAssignedAndUnique(t *testing.T) {
	resp1, _ := get(t, "/healthz")
	resp2, _ := get(t, "/healthz")
	id1, id2 := resp1.Header.Get("X-Request-ID"), resp2.Header.Get("X-Request-ID")
	if id1 == "" || id2 == "" {
		t.Fatalf("missing X-Request-ID: %q, %q", id1, id2)
	}
	if id1 == id2 {
		t.Errorf("request IDs collide: %q", id1)
	}
}

func TestLogLineHasStatusDurationAndID(t *testing.T) {
	var buf bytes.Buffer
	log.SetOutput(&buf)
	defer log.SetOutput(prevWriter())

	resp, _ := get(t, "/v1/countries")
	line := buf.String()
	if !strings.Contains(line, "200") {
		t.Errorf("log line missing status: %q", line)
	}
	if !strings.Contains(line, resp.Header.Get("X-Request-ID")) {
		t.Errorf("log line missing request ID %q: %q", resp.Header.Get("X-Request-ID"), line)
	}
	if !strings.Contains(line, "µs") && !strings.Contains(line, "ms") && !strings.Contains(line, "s ") {
		t.Errorf("log line missing duration: %q", line)
	}
}

func TestUnknownPathIsJSON404(t *testing.T) {
	resp, body := get(t, "/nope/nothing")
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status %d, want 404", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "application/json") {
		t.Errorf("content type %q", ct)
	}
	if msg := errorEnvelope(t, body); !strings.Contains(msg, "/nope/nothing") {
		t.Errorf("envelope %q does not name the path", msg)
	}
}

func TestErrorEnvelopesOnBadParams(t *testing.T) {
	for _, path := range []string{
		"/v1/list?country=XX",
		"/v1/list?country=US&platform=ios",
		"/v1/list?country=US&metric=clicks",
		"/v1/list?country=US&n=zero",
		"/v1/crux?country=ZZ",
		"/v1/site",
	} {
		resp, body := get(t, path)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", path, resp.StatusCode)
			continue
		}
		errorEnvelope(t, body)
	}
	resp, body := get(t, "/v1/experiment/fig99")
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown experiment: status %d, want 404", resp.StatusCode)
	}
	errorEnvelope(t, body)
}

func TestRecoverPanicsToJSON500(t *testing.T) {
	h := withMiddleware(http.HandlerFunc(func(http.ResponseWriter, *http.Request) {
		panic("boom")
	}), middlewareConfig{})
	log.SetOutput(io.Discard)
	defer log.SetOutput(prevWriter())
	srv := httptest.NewServer(h)
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/")
	if err != nil {
		t.Fatalf("connection died on panic: %v", err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("status %d, want 500", resp.StatusCode)
	}
	if msg := errorEnvelope(t, body); !strings.Contains(msg, resp.Header.Get("X-Request-ID")) {
		t.Errorf("500 envelope %q does not carry the request ID", msg)
	}
}

func TestRecoverPanicsReraisesAbortHandler(t *testing.T) {
	// http.ErrAbortHandler is the stdlib contract for "abort the
	// response, kill the connection"; converting it into a JSON 500
	// (as recoverPanics once did) turns a deliberate abort into a
	// half-written success-looking response.
	h := withMiddleware(http.HandlerFunc(func(http.ResponseWriter, *http.Request) {
		panic(http.ErrAbortHandler)
	}), middlewareConfig{})
	log.SetOutput(io.Discard)
	defer log.SetOutput(prevWriter())

	rec := httptest.NewRecorder()
	var recovered any
	func() {
		defer func() { recovered = recover() }()
		h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/", nil))
	}()
	if recovered != http.ErrAbortHandler {
		t.Fatalf("recovered %v, want http.ErrAbortHandler re-raised", recovered)
	}
	if rec.Body.Len() != 0 {
		t.Errorf("aborted response got a body written: %q", rec.Body.String())
	}

	// An ordinary panic must still become a JSON 500, not propagate.
	h = withMiddleware(http.HandlerFunc(func(http.ResponseWriter, *http.Request) {
		panic("boom")
	}), middlewareConfig{})
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/", nil))
	if rec.Code != http.StatusInternalServerError {
		t.Errorf("plain panic: status %d, want 500", rec.Code)
	}
}

func TestHealthzExemptFromLimiterWhenSaturated(t *testing.T) {
	// A saturated server must still answer its own health check: a
	// load balancer that gets a shed 503 from /healthz would evict a
	// merely-busy instance. Saturate a MaxInFlight=1 stack with a
	// blocked request, then check /healthz and /metrics still answer.
	mux := http.NewServeMux()
	entered := make(chan struct{})
	release := make(chan struct{})
	mux.HandleFunc("GET /slow", func(w http.ResponseWriter, _ *http.Request) {
		close(entered)
		<-release
		w.WriteHeader(http.StatusOK)
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	mux.Handle("GET /metrics", metrics.Handler(metrics.Default))
	h := withMiddleware(mux, middlewareConfig{MaxInFlight: 1, RequestTimeout: time.Minute})
	log.SetOutput(io.Discard)
	defer log.SetOutput(prevWriter())
	srv := httptest.NewServer(h)
	defer srv.Close()

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		resp, err := http.Get(srv.URL + "/slow")
		if err == nil {
			resp.Body.Close()
		}
	}()
	<-entered // the only slot is now held
	defer func() {
		close(release)
		wg.Wait()
	}()

	// A normal request sheds...
	resp, err := http.Get(srv.URL + "/other")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("normal request on saturated server: status %d, want 503", resp.StatusCode)
	}
	// ...but the health check and the metrics scrape still answer.
	for _, path := range []string{"/healthz", "/metrics"} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("%s on saturated server: status %d, want 200", path, resp.StatusCode)
		}
	}
}

func TestInFlightLimiterSheds(t *testing.T) {
	entered := make(chan struct{})
	release := make(chan struct{})
	h := withMiddleware(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		close(entered)
		<-release
		w.WriteHeader(http.StatusOK)
	}), middlewareConfig{MaxInFlight: 1})
	log.SetOutput(io.Discard)
	defer log.SetOutput(prevWriter())
	srv := httptest.NewServer(h)
	defer srv.Close()

	var wg sync.WaitGroup
	wg.Add(1)
	var firstStatus int
	go func() {
		defer wg.Done()
		resp, err := http.Get(srv.URL + "/")
		if err == nil {
			firstStatus = resp.StatusCode
			resp.Body.Close()
		}
	}()
	<-entered // the slot is now taken

	resp, err := http.Get(srv.URL + "/")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("second request: status %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("503 without Retry-After")
	}
	errorEnvelope(t, body)

	close(release)
	wg.Wait()
	if firstStatus != http.StatusOK {
		t.Errorf("first request: status %d, want 200", firstStatus)
	}
}

func TestRequestTimeoutOnContext(t *testing.T) {
	sawDeadline := false
	h := withMiddleware(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case <-r.Context().Done():
			sawDeadline = context.Cause(r.Context()) == context.DeadlineExceeded
			httpError(w, http.StatusServiceUnavailable, "timed out")
		case <-time.After(5 * time.Second):
			w.WriteHeader(http.StatusOK)
		}
	}), middlewareConfig{RequestTimeout: 20 * time.Millisecond})
	log.SetOutput(io.Discard)
	defer log.SetOutput(prevWriter())
	srv := httptest.NewServer(h)
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if !sawDeadline {
		t.Error("handler context never hit its deadline")
	}
}

// prevWriter returns the process's default log destination for
// restoring after tests that silence or capture it.
func prevWriter() io.Writer { return logDefaultWriter }

var logDefaultWriter = log.Writer()
