package main

import (
	"bytes"
	"encoding/json"
	"io"
	"log"
	"net/http"
	"strings"
	"testing"
)

// errorEnvelope decodes the JSON error body every failure path must
// produce.
func errorEnvelope(t *testing.T, body []byte) string {
	t.Helper()
	var out struct {
		Error string `json:"error"`
	}
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatalf("error body is not a JSON envelope: %v (%q)", err, body)
	}
	if out.Error == "" {
		t.Fatalf("empty error envelope: %q", body)
	}
	return out.Error
}

func TestRequestIDsAssignedAndUnique(t *testing.T) {
	resp1, _ := get(t, "/healthz")
	resp2, _ := get(t, "/healthz")
	id1, id2 := resp1.Header.Get("X-Request-ID"), resp2.Header.Get("X-Request-ID")
	if id1 == "" || id2 == "" {
		t.Fatalf("missing X-Request-ID: %q, %q", id1, id2)
	}
	if id1 == id2 {
		t.Errorf("request IDs collide: %q", id1)
	}
}

func TestLogLineHasStatusDurationAndID(t *testing.T) {
	var buf bytes.Buffer
	log.SetOutput(&buf)
	defer log.SetOutput(prevWriter())

	resp, _ := get(t, "/v1/countries")
	line := buf.String()
	if !strings.Contains(line, "200") {
		t.Errorf("log line missing status: %q", line)
	}
	if !strings.Contains(line, resp.Header.Get("X-Request-ID")) {
		t.Errorf("log line missing request ID %q: %q", resp.Header.Get("X-Request-ID"), line)
	}
	if !strings.Contains(line, "µs") && !strings.Contains(line, "ms") && !strings.Contains(line, "s ") {
		t.Errorf("log line missing duration: %q", line)
	}
}

func TestUnknownPathIsJSON404(t *testing.T) {
	resp, body := get(t, "/nope/nothing")
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status %d, want 404", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "application/json") {
		t.Errorf("content type %q", ct)
	}
	if msg := errorEnvelope(t, body); !strings.Contains(msg, "/nope/nothing") {
		t.Errorf("envelope %q does not name the path", msg)
	}
}

func TestErrorEnvelopesOnBadParams(t *testing.T) {
	for _, path := range []string{
		"/v1/list?country=XX",
		"/v1/list?country=US&platform=ios",
		"/v1/list?country=US&metric=clicks",
		"/v1/list?country=US&n=zero",
		"/v1/crux?country=ZZ",
		"/v1/site",
	} {
		resp, body := get(t, path)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", path, resp.StatusCode)
			continue
		}
		errorEnvelope(t, body)
	}
	resp, body := get(t, "/v1/experiment/fig99")
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown experiment: status %d, want 404", resp.StatusCode)
	}
	errorEnvelope(t, body)
}

// prevWriter returns the process's default log destination for
// restoring after tests that silence or capture it.
func prevWriter() io.Writer { return logDefaultWriter }

var logDefaultWriter = log.Writer()
