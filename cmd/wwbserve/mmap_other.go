//go:build !unix

package main

import (
	"os"

	"wwb/internal/chrome"
)

// decodeDataFile loads a -data artifact via the portable streaming
// decoder on platforms without mmap support.
func decodeDataFile(f *os.File) (*chrome.Dataset, *chrome.SnapshotInfo, error) {
	return chrome.DecodeAny(f)
}
