//go:build !unix

package main

import (
	"io"
	"os"

	"wwb/internal/chrome"
)

// decodeDataFile loads a -data artifact via the portable streaming
// decoder on platforms without mmap support. A .wwbd delta needs its
// base resolved relative to the file's directory, so the delta magic
// routes to the path-aware chain resolver.
func decodeDataFile(f *os.File) (*chrome.Dataset, *chrome.SnapshotInfo, error) {
	var prefix [8]byte
	n, _ := io.ReadFull(f, prefix[:])
	if chrome.IsDeltaSnapshot(prefix[:n]) {
		return chrome.DecodeAnyPath(f.Name())
	}
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return nil, nil, err
	}
	return chrome.DecodeAny(f)
}
