package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"wwb/internal/chrome"
	"wwb/internal/fleet"
)

// TestDatasetOnlyMode exercises the -data path: a dataset round-
// tripped through the wwbgen JSON format, served without a study.
func TestDatasetOnlyMode(t *testing.T) {
	// Reuse the study's dataset via encode/decode so the test covers
	// the same loading path the -data flag uses.
	var buf bytes.Buffer
	if err := testStudyDataset().Encode(&buf); err != nil {
		t.Fatal(err)
	}
	ds, err := chrome.Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(newDatasetServer(ds, fleet.Assignment{}).routes(middlewareConfig{}))
	defer srv.Close()

	// Lists work; category is empty without a study.
	resp, err := http.Get(srv.URL + "/v1/list?country=US&n=3")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("list status %d", resp.StatusCode)
	}
	var list []struct {
		Domain   string `json:"domain"`
		Category string `json:"category"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	if len(list) != 3 || list[0].Domain != "google.us" {
		t.Errorf("list = %+v", list)
	}
	if list[0].Category != "" {
		t.Errorf("dataset-only category = %q, want empty", list[0].Category)
	}

	// Site profiles still work (rank data only, no category).
	resp2, err := http.Get(srv.URL + "/v1/site?domain=google.com")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Errorf("site status %d", resp2.StatusCode)
	}

	// Experiments are explicitly unavailable.
	resp3, err := http.Get(srv.URL + "/v1/experiment/fig1")
	if err != nil {
		t.Fatal(err)
	}
	resp3.Body.Close()
	if resp3.StatusCode != http.StatusNotImplemented {
		t.Errorf("experiment status %d, want 501", resp3.StatusCode)
	}
}

// testStudyDataset exposes the shared test study's dataset.
func testStudyDataset() *chrome.Dataset {
	return testStudyForDataset.Dataset
}
