package main

import (
	"net/http"
	"strconv"
	"strings"
	"time"

	"wwb/internal/metrics"
)

// HTTP-layer metrics, exposed on GET /metrics. Routes are labelled by
// pattern, not raw path, so cardinality stays bounded no matter what
// clients request.
var (
	mHTTPRequests = metrics.Default.CounterVec(
		"http_requests_total",
		"HTTP requests served, by route pattern and status class.",
		"route", "class")
	mHTTPDuration = metrics.Default.HistogramVec(
		"http_request_duration_seconds",
		"HTTP request handling latency by route pattern.",
		metrics.DefBuckets,
		"route")
	mHTTPInFlight = metrics.Default.Gauge(
		"http_in_flight",
		"Requests currently inside the middleware stack.")
	mHTTPSheds = metrics.Default.Counter(
		"http_sheds_total",
		"Requests shed with 503 by the in-flight limiter.")
	mHTTPPanics = metrics.Default.Counter(
		"http_panics_total",
		"Handler panics converted to JSON 500 responses.")
)

// routeLabel maps a request to its route pattern for metric labels.
// Unknown paths collapse into "other" so a path-scanning client
// cannot blow up series cardinality.
func routeLabel(r *http.Request) string {
	p := r.URL.Path
	switch p {
	case "/healthz", "/metrics",
		"/v1/countries", "/v1/list", "/v1/dist", "/v1/site", "/v1/crux", "/v1/experiments":
		return p
	}
	switch {
	case strings.HasPrefix(p, "/v1/experiment/"):
		return "/v1/experiment/{id}"
	case strings.HasPrefix(p, "/debug/pprof"):
		return "/debug/pprof"
	default:
		return "other"
	}
}

// statusClass buckets a status code into 2xx/3xx/4xx/5xx.
func statusClass(status int) string {
	return strconv.Itoa(status/100) + "xx"
}

// instrumentRequests records the per-route request counter, latency
// histogram, and the in-flight gauge. It sits outside the recovery
// and shedding layers so panic 500s and limiter 503s are counted like
// any other response.
func instrumentRequests(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		route := routeLabel(r)
		mHTTPInFlight.Inc()
		defer mHTTPInFlight.Dec()
		rec := &statusRecorder{ResponseWriter: w}
		start := time.Now()
		next.ServeHTTP(rec, r)
		if rec.status == 0 {
			rec.status = http.StatusOK
		}
		mHTTPRequests.With(route, statusClass(rec.status)).Inc()
		mHTTPDuration.With(route).Observe(time.Since(start).Seconds())
	})
}
