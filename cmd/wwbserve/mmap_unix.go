//go:build unix

package main

import (
	"os"
	"syscall"

	"wwb/internal/chrome"
)

// decodeDataFile loads a -data artifact. Regular files are mmapped and
// decoded through the zero-copy bytes path — the dataset copies
// everything it keeps, so the mapping is released before returning.
// Anything not mappable (pipes, empty files) falls back to the
// streaming decoder. A .wwbd delta cannot decode from its own bytes —
// its base resolves relative to the file's directory — so the delta
// magic routes to the path-aware chain resolver instead.
func decodeDataFile(f *os.File) (*chrome.Dataset, *chrome.SnapshotInfo, error) {
	st, err := f.Stat()
	if err != nil || !st.Mode().IsRegular() || st.Size() <= 0 || int64(int(st.Size())) != st.Size() {
		return chrome.DecodeAny(f)
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(st.Size()), syscall.PROT_READ, syscall.MAP_PRIVATE)
	if err != nil {
		return chrome.DecodeAny(f)
	}
	defer syscall.Munmap(data)
	if chrome.IsDeltaSnapshot(data) {
		return chrome.DecodeAnyPath(f.Name())
	}
	return chrome.DecodeAnyBytes(data)
}
