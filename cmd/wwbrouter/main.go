// Command wwbrouter fronts a fleet of wwbserve shard replicas and
// re-exposes the single-server /v1 API. Single-cell queries are
// proxied to the shard owning their (country, month) cell;
// cross-shard queries (per-site rank profiles, the public bucket
// export) fan out to every shard and merge in canonical order, so
// every response is byte-identical to one unsharded wwbserve holding
// the whole dataset. POST /admin/swap rolls the entire fleet to a new
// dataset artifact with zero downtime.
//
// Topology comes from -shards: semicolon-separated shard groups, each
// a comma-separated replica list, in shard-index order:
//
//	wwbrouter -shards 'http://127.0.0.1:8081;http://127.0.0.1:8082'
//	wwbrouter -shards 'http://a:8081,http://b:8081;http://a:8082,http://b:8082'
//
// The shard count (number of groups) must match the -shard i/N the
// servers were started with.
package main

import (
	"context"
	"flag"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"wwb/internal/chaos"
	"wwb/internal/fleet"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("wwbrouter: ")

	var (
		addr        = flag.String("addr", "127.0.0.1:8080", "listen address")
		shards      = flag.String("shards", "", "shard topology: replica URLs, ',' between replicas, ';' between shards (required)")
		maxInFlight = flag.Int("max-inflight", 256, "max concurrently served requests before shedding with 503 (0 = unlimited)")
		reqTimeout  = flag.Duration("request-timeout", time.Minute, "per-request context deadline (0 = none)")
		subTimeout  = flag.Duration("shard-timeout", 30*time.Second, "per-sub-request timeout against a shard replica")
		cooldown    = flag.Duration("health-cooldown", 2*time.Second, "how long a replica stays routed-around after a transport failure")
		workers     = flag.Int("workers", 0, "fan-out goroutines (0 = one per CPU)")
		retryBudget = flag.Int("retry-budget", 3, "sub-request retries allowed per client request across all replicas (fan-outs scale it by shard count)")
		hedgeMax    = flag.Duration("hedge-max", 500*time.Millisecond, "upper clamp on the p99-derived hedge delay for fan-out legs (<0 disables hedging)")
		chaosSeed   = flag.Uint64("chaos-seed", 0, "fault-injection seed for the shard transport (only with -chaos-rate > 0)")
		chaosRate   = flag.Float64("chaos-rate", 0, "fault-injection rate in [0,1] on router-to-shard sub-requests; 0 disables chaos")
	)
	flag.Parse()

	if *shards == "" {
		log.Fatal("-shards is required (e.g. -shards 'http://127.0.0.1:8081;http://127.0.0.1:8082')")
	}
	var topology [][]string
	for _, group := range strings.Split(*shards, ";") {
		var reps []string
		for _, rep := range strings.Split(group, ",") {
			rep = strings.TrimSpace(rep)
			if rep == "" {
				continue
			}
			// Accept bare host:port the way -addr does.
			if !strings.Contains(rep, "://") {
				rep = "http://" + rep
			}
			reps = append(reps, rep)
		}
		topology = append(topology, reps)
	}
	// The chaos transport sits between the router and its shards so the
	// whole resilience stack (budgets, hedges, health gates, checksums)
	// is exercised against deterministic faults; rate 0 wires the real
	// transport untouched.
	tcfg := chaos.FlakyTransport(*chaosSeed, *chaosRate)
	rt, err := fleet.NewRouter(fleet.RouterConfig{
		Shards: topology,
		Client: &http.Client{
			Timeout:   *subTimeout,
			Transport: chaos.NewTransport(tcfg, nil),
		},
		HealthCooldown: *cooldown,
		Workers:        *workers,
		RetryBudget:    *retryBudget,
		HedgeMax:       *hedgeMax,
	})
	if err != nil {
		log.Fatal(err)
	}
	for i, reps := range topology {
		log.Printf("shard %d/%d: %s", i, len(topology), strings.Join(reps, ", "))
	}
	if tcfg.Enabled() {
		log.Printf("chaos transport enabled: seed %d rate %.2f", *chaosSeed, *chaosRate)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	handler := rt.Routes(fleet.MiddlewareConfig{MaxInFlight: *maxInFlight, RequestTimeout: *reqTimeout})
	srv := &http.Server{
		Handler:           handler,
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      120 * time.Second,
		IdleTimeout:       60 * time.Second,
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("routing %d shards on http://%s", rt.NumShards(), *addr)
	if err := fleet.Serve(ctx, srv, ln, 10*time.Second); err != nil {
		log.Fatal(err)
	}
	log.Printf("drained, bye")
}
