// Command wwbgen generates a synthetic study dataset and writes it as
// JSON, CSV, or a .wwb binary snapshot: the rank lists and traffic-
// distribution curves a downstream analysis (or the wwbserve server)
// consumes. Generation is fully deterministic in the seed, and file
// output is atomic: the target path only ever holds a complete,
// flushed dataset.
//
// Usage:
//
//	wwbgen -scale small -seed 42 -months feb -o dataset.json
//	wwbgen -scale default -seed 42 -o study.wwb -format wwb
package main

import (
	"flag"
	"io"
	"log"
	"os"
	"time"

	"wwb/internal/chrome"
	"wwb/internal/metrics"
	"wwb/internal/telemetry"
	"wwb/internal/world"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("wwbgen: ")

	var (
		scale     = flag.String("scale", "default", "universe scale: small, default, large, or huge")
		seed      = flag.Uint64("seed", 42, "world generation seed")
		months    = flag.String("months", "all", "months to assemble: all or feb")
		out       = flag.String("o", "-", "output path (- for stdout)")
		format    = flag.String("format", "json", "output format: json (lossless), wwb (binary snapshot with interned index, near-instant load), or csv (rank lists only)")
		threshold = flag.Int64("privacy-threshold", 50, "minimum unique clients per site per month")
		topN      = flag.Int("topn", 10000, "rank list depth")
		workers   = flag.Int("workers", 0, "assembly worker goroutines (0 = one per CPU, 1 = sequential; output is identical)")
	)
	flag.Parse()

	switch *format {
	case "json", "csv", "wwb":
	default:
		// Rejected before the (potentially minutes-long) assembly, not
		// after.
		log.Fatalf("unknown -format %q (want json, wwb, or csv)", *format)
	}
	// Scale is validated here, before the expensive world generation —
	// the error enumerates every accepted name, huge included.
	wcfg, err := world.ConfigForScale(*scale)
	if err != nil {
		log.Fatal(err)
	}
	wcfg.Seed = *seed

	opts := chrome.DefaultOptions()
	opts.PrivacyThreshold = *threshold
	opts.TopN = *topN
	opts.Workers = *workers
	if *months == "feb" {
		opts.Months = []world.Month{world.Feb2022}
	} else if *months != "all" {
		log.Fatalf("unknown -months %q (want all or feb)", *months)
	}

	log.Printf("generating %s universe (seed %d)...", *scale, *seed)
	genStart := time.Now()
	w := world.Generate(wcfg)
	metrics.ObserveStage("world.generate", time.Since(genStart))
	log.Printf("%d sites; assembling dataset...", len(w.Sites()))
	ds := chrome.Assemble(w, telemetry.DefaultConfig(), opts)
	if summary := metrics.StageSummary(); summary != "" {
		log.Printf("stage timings:\n%s", summary)
	}
	log.Printf("assembly peak heap: %.1f MiB", float64(chrome.AssemblePeakHeapBytes())/(1<<20))

	prov := chrome.SnapshotProvenance{Tool: "wwbgen", WorldSeed: *seed, Scale: *scale}
	var encode func(io.Writer) error
	switch *format {
	case "json":
		encode = ds.Encode
	case "csv":
		encode = ds.EncodeCSV
	case "wwb":
		encode = func(w io.Writer) error { return ds.EncodeSnapshot(w, prov) }
	}
	if *out == "-" {
		if err := encode(os.Stdout); err != nil {
			log.Fatalf("encoding dataset: %v", err)
		}
		return
	}
	// Atomic write: encode to a temp file, close it (checking the
	// error), then rename into place — only then claim success.
	if err := writeFileAtomic(*out, encode); err != nil {
		log.Fatal(err)
	}
	log.Printf("wrote %s", *out)
}
