// Command wwbgen generates a synthetic study dataset and writes it as
// JSON, CSV, or a .wwb binary snapshot: the rank lists and traffic-
// distribution curves a downstream analysis (or the wwbserve server)
// consumes. Generation is fully deterministic in the seed, and file
// output is atomic: the target path only ever holds a complete,
// flushed dataset.
//
// Usage:
//
//	wwbgen -scale small -seed 42 -months feb -o dataset.json
//	wwbgen -scale default -seed 42 -o study.wwb -format wwb
//
// Append mode rolls an existing binary snapshot forward by one month
// without rebuilding the covered window: only the new month's cells
// are assembled (against a world regenerated from the base's embedded
// provenance) and written as a .wwbd delta snapshot that binds to the
// base by size, whole-file checksum, and provenance:
//
//	wwbgen -append 2022-03 -base study.wwb -o study+mar.wwbd
//	wwbgen -append 2022-03 -base study.wwb -roll-dist -o study+mar.wwbd
//	wwbgen -append 2022-03 -base study.wwb -format wwb -o merged.wwb
package main

import (
	"context"
	"flag"
	"io"
	"log"
	"os"
	"path/filepath"
	"time"

	"wwb/internal/chrome"
	"wwb/internal/metrics"
	"wwb/internal/telemetry"
	"wwb/internal/world"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("wwbgen: ")

	var (
		scale     = flag.String("scale", "default", "universe scale: small, default, large, or huge")
		seed      = flag.Uint64("seed", 42, "world generation seed")
		months    = flag.String("months", "all", "months to assemble: all, feb, or an inclusive range like 2021-09..2022-03")
		out       = flag.String("o", "-", "output path (- for stdout)")
		format    = flag.String("format", "json", "output format: json (lossless), wwb (binary snapshot with interned index, near-instant load), or csv (rank lists only)")
		threshold = flag.Int64("privacy-threshold", 50, "minimum unique clients per site per month")
		topN      = flag.Int("topn", 10000, "rank list depth")
		workers   = flag.Int("workers", 0, "assembly worker goroutines (0 = one per CPU, 1 = sequential; output is identical)")
		appendM   = flag.String("append", "", "append mode: month to roll the -base snapshot forward by, e.g. 2022-03")
		basePath  = flag.String("base", "", "append mode: existing snapshot (.wwb, or .wwbd chain) to append onto")
		rollDist  = flag.Bool("roll-dist", false, "append mode: make the appended month the new distribution month (curves recomputed)")
	)
	flag.Parse()

	if *appendM != "" || *basePath != "" {
		runAppend(*appendM, *basePath, *rollDist, *format, *out, *workers)
		return
	}

	switch *format {
	case "json", "csv", "wwb":
	default:
		// Rejected before the (potentially minutes-long) assembly, not
		// after.
		log.Fatalf("unknown -format %q (want json, wwb, or csv)", *format)
	}
	// Scale is validated here, before the expensive world generation —
	// the error enumerates every accepted name, huge included.
	wcfg, err := world.ConfigForScale(*scale)
	if err != nil {
		log.Fatal(err)
	}
	wcfg.Seed = *seed

	opts := chrome.DefaultOptions()
	opts.PrivacyThreshold = *threshold
	opts.TopN = *topN
	opts.Workers = *workers
	switch *months {
	case "all":
	case "feb":
		opts.Months = []world.Month{world.Feb2022}
	default:
		// An explicit range ("2021-09..2022-03") assembles any
		// contiguous span of the simulated year — the full-rebuild
		// oracle the roll-forward CI job byte-diffs appends against.
		span, err := world.MonthRange(*months)
		if err != nil {
			log.Fatalf("-months: %v (or use all / feb)", err)
		}
		opts.Months = span
	}

	log.Printf("generating %s universe (seed %d)...", *scale, *seed)
	genStart := time.Now()
	w := world.Generate(wcfg)
	metrics.ObserveStage("world.generate", time.Since(genStart))
	log.Printf("%d sites; assembling dataset...", len(w.Sites()))
	ds := chrome.Assemble(w, telemetry.DefaultConfig(), opts)
	if summary := metrics.StageSummary(); summary != "" {
		log.Printf("stage timings:\n%s", summary)
	}
	log.Printf("assembly peak heap: %.1f MiB", float64(chrome.AssemblePeakHeapBytes())/(1<<20))

	prov := chrome.SnapshotProvenance{Tool: "wwbgen", WorldSeed: *seed, Scale: *scale}
	var encode func(io.Writer) error
	switch *format {
	case "json":
		encode = ds.Encode
	case "csv":
		encode = ds.EncodeCSV
	case "wwb":
		encode = func(w io.Writer) error { return ds.EncodeSnapshot(w, prov) }
	}
	if *out == "-" {
		if err := encode(os.Stdout); err != nil {
			log.Fatalf("encoding dataset: %v", err)
		}
		return
	}
	// Atomic write: encode to a temp file, close it (checking the
	// error), then rename into place — only then claim success.
	if err := writeFileAtomic(*out, encode); err != nil {
		log.Fatal(err)
	}
	log.Printf("wrote %s", *out)
}

// runAppend is wwbgen's append mode: assemble exactly one new month
// against a world regenerated from the base snapshot's embedded
// provenance, and persist the result — as a .wwbd delta bound to the
// base (default) or as a full merged snapshot (-format wwb).
func runAppend(monthName, basePath string, rollDist bool, format, out string, workers int) {
	if monthName == "" || basePath == "" {
		log.Fatal("append mode needs both -append MONTH and -base PATH")
	}
	month, ok := world.MonthByName(monthName)
	if !ok {
		log.Fatalf("unknown -append month %q (want 2021-09 … 2022-08)", monthName)
	}
	explicit := map[string]bool{}
	flag.Visit(func(f *flag.Flag) { explicit[f.Name] = true })
	for _, name := range []string{"scale", "seed", "months", "privacy-threshold", "topn"} {
		if explicit[name] {
			log.Fatalf("-%s conflicts with append mode: the world and assembly options come from the base snapshot", name)
		}
	}
	if !explicit["format"] {
		format = "wwbd"
	}
	switch format {
	case "wwbd", "wwb":
	case "json", "csv":
		log.Fatalf("-format %q unavailable in append mode: deltas bind to their base by binary checksum and provenance (want wwbd or wwb)", format)
	default:
		log.Fatalf("unknown -format %q (want wwbd or wwb)", format)
	}

	ds, info, err := chrome.DecodeAnyPath(basePath)
	if err != nil {
		log.Fatalf("loading base %s: %v", basePath, err)
	}
	if info.Provenance.Tool == "" {
		log.Fatalf("base %s carries no provenance (JSON dataset?): append cannot regenerate its world — re-export the base as a .wwb snapshot first", basePath)
	}
	wcfg, err := world.ConfigForScale(info.Provenance.Scale)
	if err != nil {
		log.Fatalf("base %s: %v", basePath, err)
	}
	wcfg.Seed = info.Provenance.WorldSeed

	log.Printf("regenerating %s universe (seed %d) from base provenance...",
		info.Provenance.Scale, info.Provenance.WorldSeed)
	genStart := time.Now()
	w := world.Generate(wcfg)
	metrics.ObserveStage("world.generate", time.Since(genStart))
	log.Printf("appending %s to %s (%d months covered, roll-dist %v)...",
		month, basePath, len(ds.Months), rollDist)
	inc, err := chrome.AppendMonthCtx(context.Background(), ds, w, telemetry.DefaultConfig(),
		chrome.AppendOptions{Month: month, RollDist: rollDist, Workers: workers})
	if err != nil {
		log.Fatalf("append failed: %v", err)
	}
	if summary := metrics.StageSummary(); summary != "" {
		log.Printf("stage timings:\n%s", summary)
	}
	log.Printf("append peak heap: %.1f MiB", float64(chrome.AssemblePeakHeapBytes())/(1<<20))

	prov := chrome.SnapshotProvenance{Tool: "wwbgen", WorldSeed: info.Provenance.WorldSeed, Scale: info.Provenance.Scale}
	var encode func(io.Writer) error
	switch format {
	case "wwbd":
		baseData, err := os.ReadFile(basePath)
		if err != nil {
			log.Fatalf("re-reading base for the delta binding: %v", err)
		}
		base := chrome.DeltaBase{
			Name:       filepath.Base(basePath),
			Size:       uint64(len(baseData)),
			CRC:        chrome.SnapshotFileCRC(baseData),
			Provenance: info.Provenance,
		}
		encode = func(w io.Writer) error { return chrome.EncodeDelta(w, inc, base, prov) }
	case "wwb":
		encode = func(w io.Writer) error { return ds.EncodeSnapshot(w, prov) }
	}
	if out == "-" {
		if err := encode(os.Stdout); err != nil {
			log.Fatalf("encoding output: %v", err)
		}
		return
	}
	if err := writeFileAtomic(out, encode); err != nil {
		log.Fatal(err)
	}
	log.Printf("wrote %s", out)
}
