// Command wwbgen generates a synthetic study dataset and writes it as
// JSON: the rank lists and traffic-distribution curves a downstream
// analysis (or the wwbserve server) consumes. Generation is fully
// deterministic in the seed.
//
// Usage:
//
//	wwbgen -scale small -seed 42 -months feb -o dataset.json
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"wwb/internal/chrome"
	"wwb/internal/metrics"
	"wwb/internal/telemetry"
	"wwb/internal/world"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("wwbgen: ")

	var (
		scale     = flag.String("scale", "default", "universe scale: small, default, or large")
		seed      = flag.Uint64("seed", 42, "world generation seed")
		months    = flag.String("months", "all", "months to assemble: all or feb")
		out       = flag.String("o", "-", "output path (- for stdout)")
		format    = flag.String("format", "json", "output format: json (lossless) or csv (rank lists only)")
		threshold = flag.Int64("privacy-threshold", 50, "minimum unique clients per site per month")
		topN      = flag.Int("topn", 10000, "rank list depth")
		workers   = flag.Int("workers", 0, "assembly worker goroutines (0 = one per CPU, 1 = sequential; output is identical)")
	)
	flag.Parse()

	wcfg, err := worldConfig(*scale)
	if err != nil {
		log.Fatal(err)
	}
	wcfg.Seed = *seed

	opts := chrome.DefaultOptions()
	opts.PrivacyThreshold = *threshold
	opts.TopN = *topN
	opts.Workers = *workers
	if *months == "feb" {
		opts.Months = []world.Month{world.Feb2022}
	} else if *months != "all" {
		log.Fatalf("unknown -months %q (want all or feb)", *months)
	}

	log.Printf("generating %s universe (seed %d)...", *scale, *seed)
	genStart := time.Now()
	w := world.Generate(wcfg)
	metrics.ObserveStage("world.generate", time.Since(genStart))
	log.Printf("%d sites; assembling dataset...", len(w.Sites()))
	ds := chrome.Assemble(w, telemetry.DefaultConfig(), opts)
	if summary := metrics.StageSummary(); summary != "" {
		log.Printf("stage timings:\n%s", summary)
	}

	var f *os.File
	if *out == "-" {
		f = os.Stdout
	} else {
		f, err = os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		defer func() {
			if err := f.Close(); err != nil {
				log.Fatal(err)
			}
		}()
	}
	switch *format {
	case "json":
		err = ds.Encode(f)
	case "csv":
		err = ds.EncodeCSV(f)
	default:
		log.Fatalf("unknown -format %q (want json or csv)", *format)
	}
	if err != nil {
		log.Fatalf("encoding dataset: %v", err)
	}
	if *out != "-" {
		fmt.Fprintf(os.Stderr, "wwbgen: wrote %s\n", *out)
	}
}

func worldConfig(scale string) (world.Config, error) {
	switch scale {
	case "small":
		return world.SmallConfig(), nil
	case "default":
		return world.DefaultConfig(), nil
	case "large":
		return world.LargeConfig(), nil
	default:
		return world.Config{}, fmt.Errorf("unknown -scale %q (want small, default, or large)", scale)
	}
}
