package main

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"testing"
)

func TestWriteFileAtomicSuccess(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.json")
	err := writeFileAtomic(path, func(w io.Writer) error {
		_, err := w.Write([]byte("payload"))
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "payload" {
		t.Errorf("content = %q", got)
	}
	assertNoTempFiles(t, dir)
}

// TestWriteFileAtomicEncodeFailure: a mid-encode failure must leave
// the target untouched — no truncated file, no leftover temp file.
func TestWriteFileAtomicEncodeFailure(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.json")
	boom := errors.New("disk exploded")
	err := writeFileAtomic(path, func(w io.Writer) error {
		w.Write([]byte("partial bytes that must never surface"))
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrapped %v", err, boom)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Errorf("target exists after failed write: %v", err)
	}
	assertNoTempFiles(t, dir)
}

// TestWriteFileAtomicPreservesPrevious: a failed rewrite keeps the old
// complete artifact in place, so a serving replica re-reading the path
// never sees a torn file.
func TestWriteFileAtomicPreservesPrevious(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.json")
	if err := os.WriteFile(path, []byte("previous good dataset"), 0o644); err != nil {
		t.Fatal(err)
	}
	werr := writeFileAtomic(path, func(w io.Writer) error {
		return errors.New("encode failed")
	})
	if werr == nil {
		t.Fatal("expected error")
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "previous good dataset" {
		t.Errorf("previous artifact clobbered: %q", got)
	}
	assertNoTempFiles(t, dir)
}

func assertNoTempFiles(t *testing.T, dir string) {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if matched, _ := filepath.Match("*.tmp-*", e.Name()); matched {
			t.Errorf("leftover temp file %s", e.Name())
		}
	}
}
