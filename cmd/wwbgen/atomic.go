package main

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// writeFileAtomic writes via a temp file in the destination directory
// and renames into place only after a successful flush and close, so:
//
//   - a crash or encode error mid-write never leaves a truncated file
//     at the target path (the old wwbgen wrote the target directly);
//   - a close-time failure (e.g. disk full flushing the last buffer)
//     is reported as the command's error instead of being swallowed by
//     a deferred Close after "wrote %s" already claimed success.
//
// On any failure the temp file is removed and the target is untouched.
func writeFileAtomic(path string, write func(io.Writer) error) error {
	dir, base := filepath.Split(path)
	if dir == "" {
		dir = "."
	}
	tmp, err := os.CreateTemp(dir, base+".tmp-*")
	if err != nil {
		return err
	}
	name := tmp.Name()
	discard := func(err error) error {
		tmp.Close()
		os.Remove(name)
		return err
	}
	// CreateTemp opens 0600; published datasets should be readable
	// like any os.Create output.
	if err := tmp.Chmod(0o644); err != nil {
		return discard(err)
	}
	bw := bufio.NewWriterSize(tmp, 1<<20)
	if err := write(bw); err != nil {
		return discard(fmt.Errorf("encoding dataset: %w", err))
	}
	if err := bw.Flush(); err != nil {
		return discard(fmt.Errorf("writing %s: %w", name, err))
	}
	if err := tmp.Close(); err != nil {
		os.Remove(name)
		return fmt.Errorf("finalizing %s: %w", name, err)
	}
	if err := os.Rename(name, path); err != nil {
		os.Remove(name)
		return err
	}
	return nil
}
