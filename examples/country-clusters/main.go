// Country clusters: reproduce the Section 5.3.1 analysis — pairwise
// traffic-weighted Rank-Biased Overlap between countries' top lists,
// clustered with affinity propagation and validated with silhouettes.
// The clusters recover language and regional groupings (Spanish-
// speaking Latin America, North Africa, the Anglosphere) with South
// Korea and Japan as outliers.
//
//	go run ./examples/country-clusters
package main

import (
	"fmt"
	"sort"
	"strings"

	"wwb"
)

func main() {
	fmt.Println("assembling a small study...")
	study := wwb.New(wwb.SmallConfig().FebOnly())

	sim := study.CountrySimilarity(wwb.Windows, wwb.PageLoads)

	// The most and least similar country pairs.
	type pair struct {
		a, b string
		v    float64
	}
	var pairs []pair
	for i := range sim.Countries {
		for j := i + 1; j < len(sim.Countries); j++ {
			pairs = append(pairs, pair{sim.Countries[i], sim.Countries[j], sim.Sim[i][j]})
		}
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].v > pairs[j].v })
	fmt.Println("\nmost similar country pairs (traffic-weighted RBO):")
	for _, p := range pairs[:5] {
		fmt.Printf("  %s–%s  %.2f\n", p.a, p.b, p.v)
	}
	fmt.Println("least similar:")
	for _, p := range pairs[len(pairs)-3:] {
		fmt.Printf("  %s–%s  %.2f\n", p.a, p.b, p.v)
	}

	res := study.CountryClusters(wwb.Windows, wwb.PageLoads)
	fmt.Printf("\naffinity propagation found %d clusters (avg silhouette %.2f; paper: 11 clusters, 0.11):\n",
		len(res.Clusters), res.AvgSilhouette)
	for _, c := range res.Clusters {
		fmt.Printf("  [%s] %-60s SC=%.2f\n", c.Exemplar, strings.Join(c.Members, " "), c.Silhouette)
	}
}
