// Geo sampling: run the paper's Section 6 methodology proposal — a
// geographically equitable site sample (global top-1K unioned with
// each country's top-1K) compared against the usual global top-10K —
// and see which countries a global list leaves behind.
//
//	go run ./examples/geo-sampling
package main

import (
	"fmt"
	"sort"

	"wwb"
	"wwb/internal/analysis"
)

func main() {
	fmt.Println("assembling a small study...")
	study := wwb.New(wwb.SmallConfig().FebOnly())

	strategies := analysis.CompareStrategies(study.Dataset, wwb.Windows, wwb.PageLoads, study.Month)

	fmt.Println("\nhow much of each country's browsing does a sample cover?")
	fmt.Printf("%-44s %8s %8s %8s %8s\n", "strategy", "sites", "median", "q1", "worst")
	for _, sc := range strategies {
		fmt.Printf("%-44s %8d %7.1f%% %7.1f%% %7.1f%%\n",
			sc.Set.Name, sc.Set.Size(), 100*sc.Median, 100*sc.Q1, 100*sc.Min)
	}

	// Which countries does the global strategy serve worst?
	global := strategies[1] // global top-10K
	type pair struct {
		code string
		cov  float64
	}
	var worst []pair
	for c, v := range global.PerCountry {
		worst = append(worst, pair{c, v})
	}
	sort.Slice(worst, func(i, j int) bool { return worst[i].cov < worst[j].cov })
	fmt.Printf("\ncountries least covered by %s:\n", global.Set.Name)
	union := strategies[2]
	for _, p := range worst[:7] {
		fmt.Printf("  %s  %5.1f%%  (union strategy: %5.1f%%)\n",
			p.code, 100*p.cov, 100*union.PerCountry[p.code])
	}
	fmt.Println("\nreading: global lists under-serve countries with endemic webs;")
	fmt.Println("adding each country's own head restores coverage everywhere.")
}
