// Endemicity explorer: reproduce Section 5.1's website popularity
// curves for chosen sites — each site's per-country ranks on the
// inverse-log scale, its endemicity score, curve shape, and
// global/national label.
//
//	go run ./examples/endemicity-explorer
//	go run ./examples/endemicity-explorer -sites google.com,naver.com,globo.com
package main

import (
	"flag"
	"fmt"
	"strings"

	"wwb"
	"wwb/internal/endemicity"
	"wwb/internal/ranklist"
)

func main() {
	sites := flag.String("sites",
		"google.com,youtube.com,naver.com,globo.com,mercadolibre.com,dcinside.com",
		"comma-separated domains to profile")
	flag.Parse()

	fmt.Println("assembling a small study...")
	study := wwb.New(wwb.SmallConfig().FebOnly())
	codes := study.Dataset.Countries

	// Per-country merged-key ranks from the Windows page-load lists.
	perCountry := map[string]map[string]int{}
	for _, c := range codes {
		perCountry[c] = ranklist.KeyRanks(study.Dataset.List(c, wwb.Windows, wwb.PageLoads, study.Month))
	}

	// Labels come from the full endemicity pipeline.
	res := study.Endemicity(wwb.Windows, wwb.PageLoads)
	labelOf := map[string]endemicity.Label{}
	for i, c := range res.Curves {
		labelOf[c.Key] = res.Labels[i]
	}

	for _, domain := range strings.Split(*sites, ",") {
		domain = strings.TrimSpace(domain)
		key := strings.SplitN(domain, ".", 2)[0]
		ranks := map[string]int{}
		for _, c := range codes {
			if r, ok := perCountry[c][key]; ok {
				ranks[c] = r
			}
		}
		curve := endemicity.BuildCurve(key, ranks, codes)
		fmt.Printf("\n%s — score %.1f / %.0f max, shape %s, %s, in %d/45 top lists\n",
			domain, curve.Score(), endemicity.MaxScore(curve.BestRank(), len(codes)),
			endemicity.ClassifyShape(curve), labelOf[key], curve.PresentIn())
		fmt.Printf("  curve (−log10 rank, best→worst): %s\n", sparkline(curve))
	}

	fmt.Printf("\nstudy-wide: %d sites scored, %.1f%% globally popular (paper: ≈2%%)\n",
		len(res.Curves), 100*res.GlobalShare)
}

// sparkline renders the popularity curve with eight levels between
// rank 1 (full block) and absent (space).
func sparkline(c wwb.Curve) string {
	levels := []rune(" ▁▂▃▄▅▆▇█")
	var b strings.Builder
	for _, y := range c.Y {
		// y ranges from 0 (rank 1) to -log10(10001) ≈ -4 (absent).
		t := 1 + y/4.0001 // 1 at rank 1, ~0 when absent
		idx := int(t * float64(len(levels)-1))
		if idx < 0 {
			idx = 0
		}
		if idx >= len(levels) {
			idx = len(levels) - 1
		}
		b.WriteRune(levels[idx])
	}
	return b.String()
}
