// Quickstart: build a small study and print the paper's headline
// Section 4.1 numbers — how concentrated web browsing is on top sites.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"wwb"
)

func main() {
	fmt.Println("assembling a small study (one month, ~25K sites)...")
	study := wwb.New(wwb.SmallConfig().FebOnly())

	loads := study.Concentration(wwb.Windows, wwb.PageLoads)
	times := study.Concentration(wwb.Windows, wwb.TimeOnPage)

	fmt.Printf("\nGlobal Windows traffic concentration (February 2022):\n")
	fmt.Printf("  top site:        %5.1f%% of page loads, %5.1f%% of time\n",
		100*loads.CumShare[1], 100*times.CumShare[1])
	fmt.Printf("  25%% of loads is covered by %d sites; 50%% of time by %d sites\n",
		loads.SitesFor25, times.SitesFor50)
	fmt.Printf("  top 100 sites:   %5.1f%% of loads, %5.1f%% of time\n",
		100*loads.CumShare[100], 100*times.CumShare[100])

	fmt.Printf("\nPer-country view (median across 45 countries):\n")
	fmt.Printf("  the #1 site captures %.0f%% of a country's page loads\n",
		100*loads.MedianTop1)
	for i, l := range loads.TopSiteLeaders() {
		if i >= 3 {
			break
		}
		fmt.Printf("  %s is the #1 site by loads in %d countries\n", l.Key, l.Count)
	}
	for i, l := range times.TopSiteLeaders() {
		if i >= 2 {
			break
		}
		fmt.Printf("  %s is the #1 site by time in %d countries\n", l.Key, l.Count)
	}

	fmt.Printf("\nWhat the web is used for (share of desktop traffic, top-10K):\n")
	uses := study.UseCases(wwb.Windows, wwb.PageLoads, 10000)
	for i, cat := range uses.TopCategories() {
		if i >= 5 {
			break
		}
		fmt.Printf("  %-22s %5.1f%% of page loads\n", cat, 100*uses.ByWeight[cat])
	}
}
