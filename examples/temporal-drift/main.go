// Temporal drift: reproduce Section 4.5 — how stable rank lists are
// month over month, and how December's holiday browsing shifts the
// category mix (e-commerce up, education down).
//
// This example assembles all six study months, so it takes a little
// longer than the others.
//
//	go run ./examples/temporal-drift
package main

import (
	"fmt"

	"wwb"
	"wwb/internal/analysis"
	"wwb/internal/taxonomy"
)

func main() {
	fmt.Println("assembling a small study across all six months...")
	study := wwb.New(wwb.SmallConfig())

	fmt.Println("\nadjacent-month similarity of the top-100 (Windows page loads):")
	rows := study.Temporal(wwb.Windows, wwb.PageLoads, analysis.AdjacentPairs(), []int{100})
	for _, r := range rows {
		marker := ""
		if r.Pair.A == wwb.Dec2021 || r.Pair.B == wwb.Dec2021 {
			marker = "  ← December"
		}
		fmt.Printf("  %s  intersection %5.1f%%  Spearman %.2f%s\n",
			r.Pair, 100*r.MedianIntersection, r.MedianSpearman, marker)
	}

	fmt.Println("\nmedian category share of top-10K sites by month (Windows page loads):")
	drift := study.CategoryDrift(wwb.Windows, wwb.PageLoads, 10000)
	cats := []taxonomy.Category{taxonomy.Ecommerce, taxonomy.EducationalInstitutions, taxonomy.Education}
	fmt.Printf("  %-26s", "category")
	for _, m := range wwb.StudyMonths() {
		fmt.Printf("  %s", m)
	}
	fmt.Println()
	for _, cat := range cats {
		fmt.Printf("  %-26s", cat)
		for _, m := range wwb.StudyMonths() {
			fmt.Printf("  %6.2f%%", 100*drift[m][cat])
		}
		fmt.Println()
	}
	fmt.Println("\nreading: December is the anomalous month — avoid generalising from it.")
}
