// Platform gap: reproduce Section 4.3 — which website categories are
// disproportionately browsed on mobile vs desktop, with Fisher's exact
// test per country and Bonferroni correction (Figure 4).
//
//	go run ./examples/platform-gap
package main

import (
	"fmt"
	"strings"

	"wwb"
)

func main() {
	fmt.Println("assembling a small study...")
	study := wwb.New(wwb.SmallConfig().FebOnly())

	diffs := study.PlatformDiff(wwb.PageLoads, 10000)

	fmt.Println("\nnormalised (Android − Windows) / max score per category")
	fmt.Println("(+1 = entirely mobile, −1 = entirely desktop; page loads)")
	fmt.Println()
	for _, d := range diffs {
		bar := renderBar(d.Score)
		fmt.Printf("%28s %s %+.2f  (significant in %d countries)\n",
			d.Category, bar, d.Score, d.SignificantCountries)
	}

	fmt.Println("\nreading: lifestyle/adult/gambling categories lean mobile;")
	fmt.Println("work and school categories (education, webmail, business) lean desktop.")
}

// renderBar draws a signed bar around a centre line.
func renderBar(score float64) string {
	const half = 12
	n := int(score * half)
	left := strings.Repeat(" ", half)
	right := strings.Repeat(" ", half)
	if n < 0 {
		left = strings.Repeat(" ", half+n) + strings.Repeat("█", -n)
	} else {
		right = strings.Repeat("█", n) + strings.Repeat(" ", half-n)
	}
	return left + "|" + right
}
