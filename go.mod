module wwb

go 1.22
