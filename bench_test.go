package wwb

// The benchmark harness regenerates every table and figure of the
// paper's evaluation (DESIGN.md §3 maps IDs to benches). Each
// benchmark measures the underlying analysis on the full default-scale
// dataset and, once per run, prints the rendered table/series so
// `go test -bench=. -benchmem | tee bench_output.txt` doubles as the
// reproduction log compared in EXPERIMENTS.md.

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"wwb/internal/analysis"
	"wwb/internal/catapi"
	"wwb/internal/chrome"
	"wwb/internal/cluster"
	"wwb/internal/core"
	"wwb/internal/endemicity"
	"wwb/internal/experiments"
	"wwb/internal/psl"
	"wwb/internal/rbo"
	"wwb/internal/stats"
	"wwb/internal/taxonomy"
	"wwb/internal/world"
)

var (
	benchOnce  sync.Once
	benchStudy *core.Study
	printed    sync.Map
)

// study lazily builds the shared default-scale study (all six months).
func study(b *testing.B) *core.Study {
	b.Helper()
	benchOnce.Do(func() {
		benchStudy = core.New(core.DefaultConfig())
	})
	return benchStudy
}

// printExperiment renders an experiment once per process so the bench
// log contains the reproduced rows exactly once.
func printExperiment(b *testing.B, id string) {
	b.Helper()
	if _, dup := printed.LoadOrStore(id, true); dup {
		return
	}
	out, err := (experiments.Runner{Study: benchStudy}).Run(id)
	if err != nil {
		b.Fatal(err)
	}
	fmt.Println(out)
}

func BenchmarkFig1TrafficConcentration(b *testing.B) {
	s := study(b)
	printExperiment(b, "fig1")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = analysis.AnalyzeConcentration(s.Dataset, world.Windows, world.PageLoads, s.Month)
	}
}

func BenchmarkSec41HeadlineStats(b *testing.B) {
	s := study(b)
	printExperiment(b, "sec4.1")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = analysis.AnalyzeConcentration(s.Dataset, world.Windows, world.TimeOnPage, s.Month)
	}
}

func BenchmarkFig2CategoryBreakdown(b *testing.B) {
	s := study(b)
	printExperiment(b, "fig2")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = analysis.AnalyzeUseCases(s.Dataset, s.Categorize, world.Windows, world.PageLoads, s.Month, 10000)
	}
}

func BenchmarkTable4TopTenLongTail(b *testing.B) {
	s := study(b)
	printExperiment(b, "table4")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = analysis.TopTenPresence(s.Dataset, s.Categorize, world.Windows, world.PageLoads, s.Month)
	}
}

func BenchmarkFig3CategoryPrevalenceByRank(b *testing.B) {
	s := study(b)
	printExperiment(b, "fig3")
	thresholds := []int{10, 30, 50, 100, 300, 1000, 3000, 10000}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = analysis.PrevalenceByRank(s.Dataset, s.Categorize, taxonomy.Business,
			world.Windows, world.PageLoads, s.Month, thresholds)
	}
}

func BenchmarkFig14PrevalenceSplitByMetric(b *testing.B) {
	s := study(b)
	printExperiment(b, "fig14")
	thresholds := []int{10, 100, 1000, 10000}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = analysis.PrevalenceByRank(s.Dataset, s.Categorize, taxonomy.VideoStreaming,
			world.Windows, world.TimeOnPage, s.Month, thresholds)
	}
}

func BenchmarkFig4PlatformDiffPageLoads(b *testing.B) {
	s := study(b)
	printExperiment(b, "fig4")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = analysis.AnalyzePlatformDiff(s.Dataset, s.Categorize, world.PageLoads, s.Month, 10000, 0.05, 5)
	}
}

func BenchmarkFig15PlatformDiffTime(b *testing.B) {
	s := study(b)
	printExperiment(b, "fig15")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = analysis.AnalyzePlatformDiff(s.Dataset, s.Categorize, world.TimeOnPage, s.Month, 10000, 0.05, 5)
	}
}

func BenchmarkSec44MetricAgreement(b *testing.B) {
	s := study(b)
	printExperiment(b, "sec4.4")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = analysis.AnalyzeMetricAgreement(s.Dataset, world.Windows, s.Month, 10000)
	}
}

func BenchmarkFig5MetricLeaningCategories(b *testing.B) {
	s := study(b)
	printExperiment(b, "fig5")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = analysis.AnalyzeMetricLean(s.Dataset, s.Categorize, world.Windows, s.Month, 10000)
	}
}

func BenchmarkFig16MetricLeaningMobile(b *testing.B) {
	s := study(b)
	printExperiment(b, "fig16")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = analysis.AnalyzeMetricLean(s.Dataset, s.Categorize, world.Android, s.Month, 10000)
	}
}

func BenchmarkSec45TemporalStability(b *testing.B) {
	s := study(b)
	printExperiment(b, "sec4.5")
	pairs := analysis.AdjacentPairs()
	buckets := []int{20, 100, 10000}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = analysis.AnalyzeTemporal(s.Dataset, world.Windows, world.PageLoads, pairs, buckets)
	}
}

func BenchmarkFig6PopularityCurveShapes(b *testing.B) {
	s := study(b)
	printExperiment(b, "fig6")
	res := s.Endemicity(world.Windows, world.PageLoads)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, c := range res.Curves {
			_ = endemicity.ClassifyShape(c)
		}
	}
}

func BenchmarkFig7EndemicityDistribution(b *testing.B) {
	s := study(b)
	printExperiment(b, "fig7")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = analysis.AnalyzeEndemicity(s.Dataset, s.Categorize, world.Windows, world.PageLoads, s.Month, 0)
	}
}

func BenchmarkTable2GlobalVsNationalRarity(b *testing.B) {
	s := study(b)
	printExperiment(b, "table2")
	res := s.Endemicity(world.Windows, world.PageLoads)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = endemicity.Classify(res.Curves)
	}
}

func BenchmarkFig8GlobalNationalCategories(b *testing.B) {
	s := study(b)
	printExperiment(b, "fig8")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = analysis.AnalyzeEndemicity(s.Dataset, s.Categorize, world.Android, world.PageLoads, s.Month, 0)
	}
}

func BenchmarkFig9GlobalShareByRankBucket(b *testing.B) {
	s := study(b)
	printExperiment(b, "fig9")
	res := s.Endemicity(world.Windows, world.PageLoads)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = analysis.AnalyzeGlobalShareByBucket(s.Dataset, res, world.Windows, world.PageLoads, s.Month)
	}
}

func BenchmarkFig17GlobalShareByBucketTime(b *testing.B) {
	s := study(b)
	printExperiment(b, "fig17")
	res := s.Endemicity(world.Windows, world.TimeOnPage)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = analysis.AnalyzeGlobalShareByBucket(s.Dataset, res, world.Windows, world.TimeOnPage, s.Month)
	}
}

func BenchmarkFig10CountrySimilarityRBO(b *testing.B) {
	s := study(b)
	printExperiment(b, "fig10")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = analysis.AnalyzeCountrySimilarity(s.Dataset, world.Windows, world.PageLoads, s.Month, 10000, 0)
	}
}

func BenchmarkFig18SimilarityWindowsTime(b *testing.B) {
	s := study(b)
	printExperiment(b, "fig18")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = analysis.AnalyzeCountrySimilarity(s.Dataset, world.Windows, world.TimeOnPage, s.Month, 10000, 0)
	}
}

func BenchmarkFig19SimilarityAndroidLoads(b *testing.B) {
	s := study(b)
	printExperiment(b, "fig19")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = analysis.AnalyzeCountrySimilarity(s.Dataset, world.Android, world.PageLoads, s.Month, 10000, 0)
	}
}

func BenchmarkFig20SimilarityAndroidTime(b *testing.B) {
	s := study(b)
	printExperiment(b, "fig20")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = analysis.AnalyzeCountrySimilarity(s.Dataset, world.Android, world.TimeOnPage, s.Month, 10000, 0)
	}
}

func BenchmarkFig11CountryClusters(b *testing.B) {
	s := study(b)
	printExperiment(b, "fig11")
	sm := s.CountrySimilarity(world.Windows, world.PageLoads)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = analysis.AnalyzeCountryClusters(sm)
	}
}

func BenchmarkFig12PairwiseIntersectionCDF(b *testing.B) {
	s := study(b)
	printExperiment(b, "fig12")
	buckets := []int{10, 100, 1000, 10000}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = analysis.AnalyzePairwiseIntersections(s.Dataset, world.Windows, world.PageLoads, s.Month, buckets, 0)
	}
}

func BenchmarkFig13CategoryAccuracy(b *testing.B) {
	s := study(b)
	printExperiment(b, "fig13")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = catapi.Validate(s.Service, s.Cfg.SamplesPerCategory)
	}
}

func BenchmarkTable3Taxonomy(b *testing.B) {
	study(b)
	printExperiment(b, "table3")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = taxonomy.Table3Categories()
	}
}

// ---------------------------------------------------------------------------
// Substrate micro-benchmarks: the building blocks the analyses lean on.

func BenchmarkSubstrateWorldGenerateSmall(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = world.Generate(world.SmallConfig())
	}
}

func BenchmarkSubstrateWeightedRBO10K(b *testing.B) {
	s := study(b)
	sm := s.Dataset
	curve := sm.Dist(world.Windows, world.PageLoads)
	a := sm.List("US", world.Windows, world.PageLoads, s.Month).Domains()
	c := sm.List("GB", world.Windows, world.PageLoads, s.Month).Domains()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = rbo.Weighted(a, c, curve.WeightAt)
	}
}

func BenchmarkSubstrateWeightedRBOIDs10K(b *testing.B) {
	// The interned counterpart of BenchmarkSubstrateWeightedRBO10K:
	// same country pair, same weights, dense IDs plus reused scratch.
	s := study(b)
	ds := s.Dataset
	ix := ds.Index()
	curve := ds.Dist(world.Windows, world.PageLoads)
	a := ix.MergedIDsTopN("US", world.Windows, world.PageLoads, s.Month, 10000)
	c := ix.MergedIDsTopN("GB", world.Windows, world.PageLoads, s.Month, 10000)
	scr := rbo.NewScratch(ix.NumKeys())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = rbo.WeightedIDs(a, c, curve.WeightAt, scr)
	}
}

func BenchmarkSubstrateDatasetIndexBuild(b *testing.B) {
	// One-time interning cost over the full default-scale dataset: the
	// price paid to make every later geography analysis ID-based.
	s := study(b)
	var enc bytes.Buffer
	if err := s.Dataset.Encode(&enc); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		ds, err := chrome.Decode(bytes.NewReader(enc.Bytes()))
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		_ = ds.Index()
	}
}

func BenchmarkSubstrateAffinityPropagation45(b *testing.B) {
	s := study(b)
	sm := s.CountrySimilarity(world.Windows, world.PageLoads)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = cluster.AffinityPropagation(sm.Sim, cluster.DefaultAPOptions())
	}
}

func BenchmarkSubstrateFisherExact(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = stats.FisherExact(52000, 48000, 148000, 152000)
	}
}

func BenchmarkSubstrateEndemicityScore(b *testing.B) {
	ranks := make([]int, 45)
	for i := range ranks {
		ranks[i] = 1 + i*211%endemicity.AbsentRank
	}
	c := endemicity.NewCurve("bench", ranks)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = c.Score()
	}
}

func BenchmarkSubstratePSLSiteKey(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = psl.Default.SiteKey("www.google.co.uk")
	}
}

func BenchmarkSubstrateSpearman10K(b *testing.B) {
	xs := make([]float64, 10000)
	ys := make([]float64, 10000)
	for i := range xs {
		xs[i] = float64(i * 7919 % 10007)
		ys[i] = float64(i * 104729 % 10007)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = stats.Spearman(xs, ys)
	}
}
