package wwb

// Snapshot benchmarks: the cold-start story (ROADMAP item 1). The
// baseline is BenchmarkAssembleSmall*/the full default-scale assembly
// implied by study(b); the snapshot path must load the same dataset in
// milliseconds. BENCH_3.json records the measured trajectory.

import (
	"bytes"
	"io"
	"testing"

	"wwb/internal/chrome"
	"wwb/internal/psl"
)

var benchProv = chrome.SnapshotProvenance{Tool: "bench", WorldSeed: 1, Scale: "default"}

// benchSnapshotBytes serialises the shared default-scale dataset once.
func benchSnapshotBytes(b *testing.B) []byte {
	b.Helper()
	var buf bytes.Buffer
	if err := study(b).Dataset.EncodeSnapshot(&buf, benchProv); err != nil {
		b.Fatal(err)
	}
	return buf.Bytes()
}

func benchJSONBytes(b *testing.B) []byte {
	b.Helper()
	var buf bytes.Buffer
	if err := study(b).Dataset.Encode(&buf); err != nil {
		b.Fatal(err)
	}
	return buf.Bytes()
}

// BenchmarkSnapshotEncode measures writing the default-scale dataset
// (lists + curves + interned index + per-cell views) as a .wwb file.
func BenchmarkSnapshotEncode(b *testing.B) {
	ds := study(b).Dataset
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := ds.EncodeSnapshot(io.Discard, benchProv); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSnapshotLoad is the serving cold start: decode a .wwb
// snapshot into a fully queryable dataset with its interned index
// restored. Compare against BenchmarkDatasetJSONDecode (the old -data
// path) and the assembly benchmarks (the no-artifact path).
func BenchmarkSnapshotLoad(b *testing.B) {
	snap := benchSnapshotBytes(b)
	b.SetBytes(int64(len(snap)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := chrome.DecodeSnapshot(bytes.NewReader(snap)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSnapshotLoadBytes is the wwbserve -data path on platforms
// with mmap: the file is already fully in memory and sections decode
// zero-copy.
func BenchmarkSnapshotLoadBytes(b *testing.B) {
	snap := benchSnapshotBytes(b)
	b.SetBytes(int64(len(snap)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := chrome.DecodeSnapshotBytes(snap); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDatasetJSONEncode is the wwbgen JSON write baseline.
func BenchmarkDatasetJSONEncode(b *testing.B) {
	ds := study(b).Dataset
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := ds.Encode(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDatasetJSONDecode is the old -data cold start: parse the
// wwbgen JSON dump (and leave the index to be re-interned lazily on
// first query — not measured here, so the JSON number is flattered).
func BenchmarkDatasetJSONDecode(b *testing.B) {
	raw := benchJSONBytes(b)
	b.SetBytes(int64(len(raw)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := chrome.Decode(bytes.NewReader(raw)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSnapshotLoadPlusFirstQuery decodes and then touches the
// restored index the way /v1/site does, so the number includes what
// the JSON path defers to first-query time.
func BenchmarkSnapshotLoadPlusFirstQuery(b *testing.B) {
	snap := benchSnapshotBytes(b)
	b.SetBytes(int64(len(snap)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ds, _, err := chrome.DecodeSnapshot(bytes.NewReader(snap))
		if err != nil {
			b.Fatal(err)
		}
		ix := ds.Index()
		if _, ok := ix.ID(psl.Default.SiteKey("google.us")); !ok {
			b.Fatal("google missing from restored index")
		}
	}
}
