package wwb_test

import (
	"fmt"

	"wwb"
)

// ExampleCountries enumerates the study's geographic scope.
func ExampleCountries() {
	countries := wwb.Countries()
	byContinent := map[string]int{}
	for _, c := range countries {
		byContinent[c.Continent]++
	}
	fmt.Println(len(countries), "countries")
	fmt.Println("Asia:", byContinent["Asia"], "Europe:", byContinent["Europe"])
	// Output:
	// 45 countries
	// Asia: 10 Europe: 10
}

// ExampleStudyMonths shows the paper's measurement window.
func ExampleStudyMonths() {
	months := wwb.StudyMonths()
	fmt.Println(months[0], "…", months[len(months)-1])
	// Output:
	// 2021-09 … 2022-02
}

// ExampleNew shows the full pipeline; it is compile-checked but not
// executed during tests because a study build takes several seconds.
func ExampleNew() {
	study := wwb.New(wwb.SmallConfig().FebOnly())
	conc := study.Concentration(wwb.Windows, wwb.PageLoads)
	fmt.Printf("top site captures %.0f%% of global page loads\n", 100*conc.CumShare[1])
}
