package wwb

// Benchmarks for the extension experiments: the Section 6 sampling-
// strategy comparison, the public-bucket replication study, and the
// ablations of the reproduction's design choices (DESIGN.md §3).

import (
	"testing"

	"wwb/internal/ablation"
	"wwb/internal/analysis"
	"wwb/internal/chrome"
	"wwb/internal/crux"
	"wwb/internal/session"
	"wwb/internal/weblist"
	"wwb/internal/world"
)

func BenchmarkSec6SamplingStrategies(b *testing.B) {
	s := study(b)
	printExperiment(b, "sec6")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = analysis.CompareStrategies(s.Dataset, world.Windows, world.PageLoads, s.Month)
	}
}

func BenchmarkCruxReplication(b *testing.B) {
	s := study(b)
	printExperiment(b, "crux")
	records := crux.Export(s.Dataset, s.Month)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = analysis.AnalyzeCruxReplication(s.Dataset, records, s.Categorize, world.Windows, s.Month)
	}
}

func BenchmarkCruxExport(b *testing.B) {
	s := study(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = crux.Export(s.Dataset, s.Month)
	}
}

func BenchmarkAblationRBOVariants(b *testing.B) {
	s := study(b)
	printExperiment(b, "ablation-rbo")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = ablation.CompareRBOVariants(s.Dataset, world.Windows, world.PageLoads, s.Month, 10000)
	}
}

func BenchmarkAblationPrivacySweep(b *testing.B) {
	s := study(b)
	printExperiment(b, "ablation-privacy")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = ablation.SweepPrivacyThreshold(s.World, s.Cfg.Telemetry, []int64{0, 50, 500, 5000})
	}
}

func BenchmarkAblationDownsampleSweep(b *testing.B) {
	s := study(b)
	printExperiment(b, "ablation-downsample")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = ablation.SweepDownsampleRate(s.World, s.Cfg.Telemetry, []float64{0.0005, 0.0035, 0.05, 1})
	}
}

func BenchmarkAblationSeasonality(b *testing.B) {
	s := study(b)
	printExperiment(b, "ablation-seasonality")
	wcfg := s.Cfg.World
	wcfg.TailScale = 1
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = ablation.CompareSeasonality(wcfg, s.Cfg.Telemetry)
	}
}

func BenchmarkSec53CountryProfiles(b *testing.B) {
	s := study(b)
	printExperiment(b, "sec5.3")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = analysis.AnalyzeCountryProfile(s.Dataset, s.Categorize, "KR", world.Windows, world.PageLoads, s.Month)
	}
}

func BenchmarkFig1PowerLawFit(b *testing.B) {
	s := study(b)
	printExperiment(b, "fig1-fit")
	curve := s.Dataset.Dist(world.Windows, world.PageLoads)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = analysis.FitPowerLaw(curve, 10, 10000)
	}
}

func BenchmarkListsCompare(b *testing.B) {
	s := study(b)
	printExperiment(b, "lists-compare")
	truth := weblist.BrowsingTop(s.Dataset, s.Month, 10000)
	list := weblist.Build(s.World, weblist.UmbrellaLike, weblist.DefaultOptions(), 10000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = weblist.Compare(weblist.UmbrellaLike, list, truth, []int{10, 100, 1000})
	}
}

func BenchmarkExtSummerAssembly(b *testing.B) {
	s := study(b)
	printExperiment(b, "ext-summer")
	opts := s.Cfg.Chrome
	opts.Months = []world.Month{world.Jul2022}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = chrome.Assemble(s.World, s.Cfg.Telemetry, opts)
	}
}

func BenchmarkSubstrateSessionSampling(b *testing.B) {
	s := study(b)
	us, _ := world.CountryByCode("US")
	rng := world.NewRNG(5).Fork("bench-session")
	model := session.NewModel(rng, s.World, session.DefaultConfig(), us, world.Windows, world.Feb2022)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = model.Sample()
	}
}

func BenchmarkSubstrateWeblistBuild(b *testing.B) {
	s := study(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = weblist.Build(s.World, weblist.MajesticLike, weblist.DefaultOptions(), 1000)
	}
}
