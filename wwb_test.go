package wwb

import "testing"

func TestPublicVocabulary(t *testing.T) {
	if len(Countries()) != 45 {
		t.Errorf("Countries() = %d, want 45", len(Countries()))
	}
	if len(StudyMonths()) != 6 {
		t.Errorf("StudyMonths() = %d, want 6", len(StudyMonths()))
	}
	if len(Categories()) != 63 {
		t.Errorf("Categories() = %d, want 63", len(Categories()))
	}
	if Windows.String() != "Windows" || PageLoads.String() != "Page Loads" {
		t.Error("re-exported constants broken")
	}
}

func TestPublicConfigsDiffer(t *testing.T) {
	def, small := DefaultConfig(), SmallConfig()
	if def.World.TailScale <= small.World.TailScale {
		t.Error("default should be larger than small")
	}
	feb := SmallConfig().FebOnly()
	if len(feb.Chrome.Months) != 1 {
		t.Error("FebOnly should restrict months")
	}
}

func TestPublicEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("full pipeline is slow for -short")
	}
	study := New(SmallConfig().FebOnly())
	c := study.Concentration(Windows, PageLoads)
	if c.MedianTop1 <= 0 || c.MedianTop1 >= 1 {
		t.Errorf("median top-1 share = %v", c.MedianTop1)
	}
	if len(study.Dataset.List("US", Windows, PageLoads, Feb2022)) == 0 {
		t.Error("dataset missing US list")
	}
}
